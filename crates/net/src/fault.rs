//! Link-fault injection: a transport wrapper whose link can be severed
//! and restored from outside.
//!
//! Cluster experiments need to take a replica's WAN link down mid-trace
//! and bring it back later (the outage → degraded mode → resync cycle).
//! [`FaultTransport`] wraps any [`Transport`]; its paired [`LinkHandle`]
//! flips the link state from the test harness while the replication
//! engine owns the transport.
//!
//! While severed, every operation fails with [`NetError::Disconnected`]
//! — exactly what a dropped TCP connection looks like to the engine.
//! Frames already queued by the peer are *not* discarded; like a
//! reconnecting TCP endpoint, the engine is expected to drain or
//! reconcile them on restore.
//!
//! Beyond the kill switch, [`LinkHandle::set_send_cost`] injects a
//! per-message (and optional per-KiB) delay into `send`, modelling a
//! slow WAN hop. Pipeline experiments use this to make one replica's
//! link an order of magnitude slower than its peers without touching
//! the transport underneath.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::{NetError, TrafficMeter, Transport};

/// Link state shared between a [`FaultTransport`] and its [`LinkHandle`].
#[derive(Debug, Default)]
struct LinkState {
    up: AtomicBool,
    /// Injected delay per sent message, in nanoseconds.
    send_cost_nanos: AtomicU64,
    /// Additional injected delay per KiB of payload, in nanoseconds.
    send_cost_per_kb_nanos: AtomicU64,
}

/// Shared switch controlling a [`FaultTransport`]'s link state.
#[derive(Clone, Debug)]
pub struct LinkHandle {
    state: Arc<LinkState>,
}

impl LinkHandle {
    /// Cuts the link: all transport operations fail until restored.
    pub fn sever(&self) {
        self.state.up.store(false, Ordering::SeqCst);
    }

    /// Brings the link back up.
    pub fn restore(&self) {
        self.state.up.store(true, Ordering::SeqCst);
    }

    /// Whether the link is currently up.
    pub fn is_up(&self) -> bool {
        self.state.up.load(Ordering::SeqCst)
    }

    /// Injects a synthetic transmission cost into every `send`:
    /// `per_msg` models the per-frame propagation delay (the WAN RTT
    /// component), `per_kb` the serialization delay per KiB of payload.
    /// Pass zeros to remove the cost.
    pub fn set_send_cost(&self, per_msg: Duration, per_kb: Duration) {
        self.state
            .send_cost_nanos
            .store(per_msg.as_nanos() as u64, Ordering::SeqCst);
        self.state
            .send_cost_per_kb_nanos
            .store(per_kb.as_nanos() as u64, Ordering::SeqCst);
    }
}

/// A [`Transport`] wrapper with an externally controlled kill switch
/// and injectable send latency.
#[derive(Debug)]
pub struct FaultTransport<T> {
    inner: T,
    state: Arc<LinkState>,
}

impl<T: Transport> FaultTransport<T> {
    /// Wraps `inner` (link initially up, no send cost) and returns the
    /// control handle.
    pub fn new(inner: T) -> (Self, LinkHandle) {
        let state = Arc::new(LinkState {
            up: AtomicBool::new(true),
            ..Default::default()
        });
        let handle = LinkHandle {
            state: Arc::clone(&state),
        };
        (Self { inner, state }, handle)
    }

    fn check_up(&self) -> Result<(), NetError> {
        if self.state.up.load(Ordering::SeqCst) {
            Ok(())
        } else {
            Err(NetError::Disconnected)
        }
    }
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn send(&self, msg: &[u8]) -> Result<(), NetError> {
        self.check_up()?;
        let per_msg = self.state.send_cost_nanos.load(Ordering::SeqCst);
        let per_kb = self.state.send_cost_per_kb_nanos.load(Ordering::SeqCst);
        if per_msg > 0 || per_kb > 0 {
            let cost = per_msg + per_kb * (msg.len() as u64).div_ceil(1024);
            std::thread::sleep(Duration::from_nanos(cost));
        }
        self.inner.send(msg)
    }

    fn recv(&self) -> Result<Vec<u8>, NetError> {
        self.check_up()?;
        self.inner.recv()
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, NetError> {
        self.check_up()?;
        self.inner.recv_timeout(timeout)
    }

    fn meter(&self) -> &Arc<TrafficMeter> {
        self.inner.meter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{channel_pair, LinkModel};

    #[test]
    fn severed_link_fails_both_directions() {
        let (a, b) = channel_pair(LinkModel::t1());
        let (faulty, link) = FaultTransport::new(a);
        faulty.send(b"before").unwrap();
        assert_eq!(b.recv().unwrap(), b"before");

        link.sever();
        assert!(!link.is_up());
        assert!(matches!(faulty.send(b"x"), Err(NetError::Disconnected)));
        assert!(matches!(
            faulty.recv_timeout(Duration::from_millis(1)),
            Err(NetError::Disconnected)
        ));
    }

    #[test]
    fn restore_resumes_and_preserves_queued_frames() {
        let (a, b) = channel_pair(LinkModel::t1());
        let (faulty, link) = FaultTransport::new(a);
        link.sever();
        // Peer keeps talking into the void; the frame queues.
        b.send(b"queued during outage").unwrap();
        assert!(faulty.recv().is_err());

        link.restore();
        assert_eq!(faulty.recv().unwrap(), b"queued during outage");
        faulty.send(b"back").unwrap();
        assert_eq!(b.recv().unwrap(), b"back");
    }

    #[test]
    fn send_cost_delays_but_delivers() {
        let (a, b) = channel_pair(LinkModel::t1());
        let (faulty, link) = FaultTransport::new(a);
        link.set_send_cost(Duration::from_millis(5), Duration::ZERO);
        let t0 = std::time::Instant::now();
        faulty.send(b"slow frame").unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(5));
        assert_eq!(b.recv().unwrap(), b"slow frame");

        // Per-KiB cost scales with the payload size.
        link.set_send_cost(Duration::ZERO, Duration::from_millis(2));
        let t1 = std::time::Instant::now();
        faulty.send(&vec![0u8; 3 * 1024]).unwrap();
        assert!(t1.elapsed() >= Duration::from_millis(6));

        // Zeros remove the cost entirely.
        link.set_send_cost(Duration::ZERO, Duration::ZERO);
        let t2 = std::time::Instant::now();
        faulty.send(b"fast again").unwrap();
        assert!(t2.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn meter_passes_through_to_inner() {
        let (a, b) = channel_pair(LinkModel::t1());
        let (faulty, _link) = FaultTransport::new(a);
        faulty.send(b"abcd").unwrap();
        let _ = b.recv().unwrap();
        assert_eq!(faulty.meter().messages_sent(), 1);
        assert_eq!(faulty.meter().payload_bytes_sent(), 4);
    }
}
