//! The message transport trait.

use std::sync::Arc;
use std::time::Duration;

use crate::{NetError, TrafficMeter};

/// A blocking, message-oriented, reliable, ordered duplex channel.
///
/// Both PRINS endpoints (the iSCSI-lite initiator/target pair and the
/// replication engines) speak whole messages; framing is the transport's
/// job. Implementations must be safe to share between a sender thread and
/// a receiver thread (`&self` methods, `Send + Sync`).
pub trait Transport: Send + Sync {
    /// Sends one message.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] if the peer is gone,
    /// [`NetError::FrameTooLarge`] for oversized messages,
    /// [`NetError::Io`] for socket failures.
    fn send(&self, msg: &[u8]) -> Result<(), NetError>;

    /// Receives the next message, blocking until one arrives.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] when the peer hung up and the stream is
    /// drained.
    fn recv(&self) -> Result<Vec<u8>, NetError>;

    /// Receives the next message, waiting at most `timeout`.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] if nothing arrived in time; otherwise as
    /// [`recv`](Self::recv).
    fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, NetError>;

    /// The traffic meter accounting this endpoint's sends and receives.
    fn meter(&self) -> &Arc<TrafficMeter>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{channel_pair, LinkModel};

    #[test]
    fn transport_is_object_safe() {
        let (a, b) = channel_pair(LinkModel::t1());
        let boxed: Box<dyn Transport> = Box::new(a);
        boxed.send(b"x").unwrap();
        assert_eq!(b.recv().unwrap(), b"x");
        let _ = boxed.meter();
    }
}
