//! Injectable time source.
//!
//! Higher layers (the engine pipeline, the simulation harness) measure
//! elapsed time through a [`Clock`] so that the same code runs against
//! the OS clock in production and a virtual clock under
//! [`SimNet`](crate::SimNet), where time only advances when the
//! simulation says so — no real sleeps, deterministic traces.

use std::time::Instant;

/// A monotonic nanosecond time source.
///
/// Implementations must be monotonic (successive `now_nanos` calls
/// never decrease) and cheap; the pipeline reads the clock around every
/// encode and send.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary (per-clock) epoch.
    fn now_nanos(&self) -> u64;
}

/// The OS monotonic clock, epoch = clock construction.
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// Creates a wall clock whose epoch is "now".
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let clock = WallClock::new();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn clock_is_object_safe() {
        let clock: Box<dyn Clock> = Box::new(WallClock::new());
        let _ = clock.now_nanos();
    }
}
