//! In-process transport over crossbeam channels.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};

use crate::{LinkModel, NetError, TrafficMeter, Transport};

/// One endpoint of an in-memory duplex transport.
///
/// Created in pairs by [`channel_pair`]. Messages are delivered reliably
/// and in order; traffic is accounted against the pair's [`LinkModel`].
/// This is the transport used by all single-process experiments — the
/// paper's traffic numbers depend only on message sizes, which the meter
/// captures exactly.
pub struct ChannelTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    meter: Arc<TrafficMeter>,
}

/// Creates a connected pair of in-memory transports sharing a link model.
///
/// Each endpoint has its own meter (so a primary's sends and a replica's
/// sends are counted separately).
///
/// # Example
///
/// ```
/// use prins_net::{channel_pair, LinkModel, Transport};
///
/// # fn main() -> Result<(), prins_net::NetError> {
/// let (primary, replica) = channel_pair(LinkModel::t3());
/// primary.send(b"hello")?;
/// replica.send(b"ack")?;
/// assert_eq!(replica.recv()?, b"hello");
/// assert_eq!(primary.recv()?, b"ack");
/// # Ok(())
/// # }
/// ```
pub fn channel_pair(link: LinkModel) -> (ChannelTransport, ChannelTransport) {
    let (tx_ab, rx_ab) = unbounded();
    let (tx_ba, rx_ba) = unbounded();
    let a = ChannelTransport {
        tx: tx_ab,
        rx: rx_ba,
        meter: TrafficMeter::shared(link),
    };
    let b = ChannelTransport {
        tx: tx_ba,
        rx: rx_ab,
        meter: TrafficMeter::shared(link),
    };
    (a, b)
}

impl ChannelTransport {
    /// Non-blocking receive; returns `Ok(None)` when no message is
    /// queued.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] when the peer endpoint was dropped and
    /// the queue is drained.
    pub fn try_recv(&self) -> Result<Option<Vec<u8>>, NetError> {
        match self.rx.try_recv() {
            Ok(msg) => {
                self.meter.record_recv(msg.len());
                Ok(Some(msg))
            }
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(NetError::Disconnected),
        }
    }
}

impl Transport for ChannelTransport {
    fn send(&self, msg: &[u8]) -> Result<(), NetError> {
        self.meter.record_send(msg.len());
        self.tx
            .send(msg.to_vec())
            .map_err(|_| NetError::Disconnected)
    }

    fn recv(&self) -> Result<Vec<u8>, NetError> {
        let msg = self.rx.recv().map_err(|_| NetError::Disconnected)?;
        self.meter.record_recv(msg.len());
        Ok(msg)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, NetError> {
        match self.rx.recv_timeout(timeout) {
            Ok(msg) => {
                self.meter.record_recv(msg.len());
                Ok(msg)
            }
            Err(RecvTimeoutError::Timeout) => Err(NetError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    fn meter(&self) -> &Arc<TrafficMeter> {
        &self.meter
    }
}

impl std::fmt::Debug for ChannelTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelTransport")
            .field("queued", &self.rx.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_arrive_in_order() {
        let (a, b) = channel_pair(LinkModel::t1());
        for i in 0..10u8 {
            a.send(&[i]).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(b.recv().unwrap(), vec![i]);
        }
    }

    #[test]
    fn try_recv_reports_empty_and_messages() {
        let (a, b) = channel_pair(LinkModel::t1());
        assert!(b.try_recv().unwrap().is_none());
        a.send(b"m").unwrap();
        assert_eq!(b.try_recv().unwrap().unwrap(), b"m");
    }

    #[test]
    fn drop_of_peer_disconnects() {
        let (a, b) = channel_pair(LinkModel::t1());
        drop(b);
        assert!(matches!(a.send(b"x"), Err(NetError::Disconnected)));
        assert!(matches!(a.recv(), Err(NetError::Disconnected)));
    }

    #[test]
    fn timeout_fires_when_idle() {
        let (_a, b) = channel_pair(LinkModel::t1());
        assert!(matches!(
            b.recv_timeout(Duration::from_millis(10)),
            Err(NetError::Timeout)
        ));
    }

    #[test]
    fn meters_count_each_direction_separately() {
        let (a, b) = channel_pair(LinkModel::t1());
        a.send(&vec![0u8; 3000]).unwrap();
        let _ = b.recv().unwrap();
        assert_eq!(a.meter().messages_sent(), 1);
        assert_eq!(a.meter().payload_bytes_sent(), 3000);
        assert_eq!(a.meter().packets_sent(), 2);
        assert_eq!(b.meter().messages_sent(), 0);
        assert_eq!(b.meter().payload_bytes_received(), 3000);
    }

    #[test]
    fn cross_thread_usage() {
        let (a, b) = channel_pair(LinkModel::t1());
        let h = std::thread::spawn(move || {
            for _ in 0..100 {
                let m = b.recv().unwrap();
                b.send(&m).unwrap();
            }
        });
        for i in 0..100u32 {
            a.send(&i.to_le_bytes()).unwrap();
            assert_eq!(a.recv().unwrap(), i.to_le_bytes());
        }
        h.join().unwrap();
    }
}
