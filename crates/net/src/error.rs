//! Error type for transports.

use std::fmt;
use std::io;

/// Errors returned by [`Transport`](crate::Transport) operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// The peer hung up (channel closed / connection reset).
    Disconnected,
    /// No message arrived within the requested timeout.
    Timeout,
    /// A frame exceeded the transport's maximum message size.
    FrameTooLarge {
        /// Size of the offending frame.
        size: usize,
        /// Maximum the transport accepts.
        max: usize,
    },
    /// An underlying socket error.
    Io(io::Error),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Disconnected => write!(f, "transport peer disconnected"),
            NetError::Timeout => write!(f, "timed out waiting for a message"),
            NetError::FrameTooLarge { size, max } => {
                write!(f, "frame of {size} bytes exceeds maximum {max}")
            }
            NetError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::ConnectionAborted => NetError::Disconnected,
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => NetError::Timeout,
            _ => NetError::Io(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_error_kinds_map_to_semantic_variants() {
        let e: NetError = io::Error::new(io::ErrorKind::ConnectionReset, "x").into();
        assert!(matches!(e, NetError::Disconnected));
        let e: NetError = io::Error::new(io::ErrorKind::TimedOut, "x").into();
        assert!(matches!(e, NetError::Timeout));
        let e: NetError = io::Error::new(io::ErrorKind::PermissionDenied, "x").into();
        assert!(matches!(e, NetError::Io(_)));
    }

    #[test]
    fn error_is_send_sync_and_displays() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
        assert!(NetError::Timeout.to_string().contains("timed out"));
    }
}
