//! Network substrate: message transports, the paper's WAN link model,
//! and wire-traffic metering.
//!
//! The PRINS evaluation measures one thing above all: **bytes put on the
//! network per replicated write**. This crate supplies the pieces every
//! higher layer uses to produce and account for that traffic:
//!
//! * [`Transport`] — a blocking, message-oriented duplex channel trait,
//! * [`channel_pair`] — an in-process transport (crossbeam channels) used
//!   by tests and single-process experiments,
//! * [`TcpTransport`] — length-prefix framed TCP for real two-process
//!   deployments (the examples run initiator and target over loopback),
//! * [`LinkModel`] — the paper's §3.3 link parameters: 1.5 KB Ethernet
//!   payload per packet plus 0.112 KB of TCP/IP/Ethernet headers, T1
//!   (154.4 KB/s) and T3 (4473.6 KB/s) bandwidths, 5 µs nodal processing
//!   and 1 ms propagation delay,
//! * [`TrafficMeter`] — atomic counters of messages, payload bytes, wire
//!   bytes (payload + per-packet header overhead) and packets,
//! * [`FaultTransport`] — a wrapper whose link a test harness can sever
//!   and restore, for replica-outage experiments,
//! * [`SinkTransport`] — discards sends (still metered) and replays a
//!   pre-loaded receive script; keeps wire allocations out of
//!   allocation-budget measurements,
//! * [`Clock`] / [`SimNet`] — the determinism seam: an injectable time
//!   source and a discrete-event simulated network with virtual time and
//!   scripted faults (delay, drop, duplicate, reorder, link flap), used
//!   by the `prins-sim` harness.
//!
//! # Example
//!
//! ```
//! use prins_net::{channel_pair, LinkModel, Transport};
//!
//! # fn main() -> Result<(), prins_net::NetError> {
//! let (a, b) = channel_pair(LinkModel::t1());
//! a.send(b"parity delta")?;
//! assert_eq!(b.recv()?, b"parity delta");
//! assert_eq!(a.meter().messages_sent(), 1);
//! // 12 payload bytes fit in one packet: 12 + 112 header bytes.
//! assert_eq!(a.meter().wire_bytes_sent(), 124);
//! # Ok(())
//! # }
//! ```

mod channel;
mod clock;
mod error;
mod fault;
mod link;
mod meter;
mod sim;
mod sink;
mod tcp;
mod transport;

pub use channel::{channel_pair, ChannelTransport};
pub use clock::{Clock, WallClock};
pub use error::NetError;
pub use fault::{FaultTransport, LinkHandle};
pub use link::LinkModel;
pub use meter::{MeterSnapshot, TrafficMeter};
pub use sim::{Dir, MsgRecord, SimClock, SimLinkCtl, SimNet, SimTransport};
pub use sink::SinkTransport;
pub use tcp::TcpTransport;
pub use transport::Transport;
