//! Deterministic network simulation: virtual time, scripted faults.
//!
//! [`SimNet`] is a single-threaded discrete-event network. Endpoints
//! ([`SimTransport`]) implement [`Transport`], but nothing ever sleeps
//! or blocks on the OS: `send` schedules a delivery event at
//! `now + delay` on a shared virtual clock, and `recv_timeout` *pumps*
//! the event queue — advancing the clock to each event's timestamp —
//! until a message lands in the caller's inbox or the (virtual)
//! deadline passes. A ten-second ack timeout costs ten virtual seconds
//! and zero real ones.
//!
//! Each link direction carries a fault policy the harness scripts
//! through [`SimLinkCtl`]: per-frame delay, drop-next-N, duplicate-
//! next-N, and reorder-next (hold one frame and release it behind its
//! successor). Links can be severed and restored immediately or at a
//! scheduled virtual time; a severed link fails both directions with
//! [`NetError::Disconnected`] while frames already on the wire are
//! preserved, mirroring [`FaultTransport`](crate::FaultTransport).
//!
//! Passive peers (replica appliers) register an *actor*: a callback the
//! hub runs whenever a frame is delivered to that endpoint or its link
//! comes back up. Actors must use [`SimTransport::try_recv`] and never
//! block — the whole simulation is one thread.
//!
//! Everything the hub does is appended to a human-readable trace and a
//! structured message log. Runs are deterministic: the same calls in
//! the same order produce byte-identical traces, which is what lets a
//! failing fuzz seed be replayed exactly (see `prins-sim`).

use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::{Clock, NetError, TrafficMeter, Transport};

/// A shared virtual clock, advanced only by the simulation.
///
/// By default time moves solely when the event pump advances it. With
/// [`set_auto_tick`](SimClock::set_auto_tick) every [`Clock::now_nanos`]
/// *read* also advances time by a fixed amount, which gives compute
/// stages (encode, send) a deterministic non-zero virtual duration —
/// otherwise any span whose endpoints fall between network events would
/// measure zero. The hub's own scheduling uses [`SimClock::now`], which
/// never ticks, so delivery timing is unaffected.
#[derive(Debug, Default)]
pub struct SimClock {
    nanos: AtomicU64,
    tick: AtomicU64,
}

impl SimClock {
    /// Creates a clock at t = 0.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Current virtual time in nanoseconds. Never auto-ticks.
    pub fn now(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }

    /// Makes every [`Clock::now_nanos`] read advance virtual time by
    /// `nanos` (0 — the default — disables the tick).
    pub fn set_auto_tick(&self, nanos: u64) {
        self.tick.store(nanos, Ordering::SeqCst);
    }

    /// Advances virtual time to `t` if it is ahead of now.
    pub fn advance_to(&self, t: u64) {
        self.nanos.fetch_max(t, Ordering::SeqCst);
    }
}

impl Clock for SimClock {
    fn now_nanos(&self) -> u64 {
        let tick = self.tick.load(Ordering::SeqCst);
        if tick == 0 {
            self.now()
        } else {
            self.nanos.fetch_add(tick, Ordering::SeqCst) + tick
        }
    }
}

/// Which direction of a link a fault applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// From the first endpoint returned by [`SimNet::add_link`] (the
    /// primary side, by convention) towards the second.
    AtoB,
    /// From the second endpoint back to the first (the ack path).
    BtoA,
}

/// One message's life, for invariant checkers.
#[derive(Clone, Debug)]
pub struct MsgRecord {
    /// Message id (index into [`SimNet::message_log`]).
    pub id: u64,
    /// Sending endpoint index.
    pub from: usize,
    /// Sending endpoint label (`link.a` / `link.b`).
    pub from_label: String,
    /// Virtual send time.
    pub sent_at: u64,
    /// The frame bytes.
    pub payload: Vec<u8>,
    /// Virtual delivery times (two entries = duplicated in flight).
    pub delivered_at: Vec<u64>,
    /// Whether the fault policy dropped the frame.
    pub dropped: bool,
}

#[derive(Debug)]
enum Hold {
    Off,
    /// The next sent frame will be held back.
    Armed,
    /// A held frame waiting for its successor (or a queue drain).
    Held {
        msg: u64,
        bytes: Vec<u8>,
        deliver_at: u64,
    },
}

#[derive(Debug)]
struct Egress {
    delay: u64,
    per_kb: u64,
    drop_next: u32,
    dup_next: u32,
    corrupt_next: u32,
    hold: Hold,
}

impl Egress {
    fn new(delay: u64) -> Self {
        Self {
            delay,
            per_kb: 0,
            drop_next: 0,
            dup_next: 0,
            corrupt_next: 0,
            hold: Hold::Off,
        }
    }
}

#[derive(Debug)]
struct EndpointState {
    label: String,
    link: usize,
    peer: usize,
    inbox: VecDeque<(u64, Vec<u8>)>,
    egress: Egress,
}

#[derive(Debug)]
struct LinkState {
    name: String,
    up: bool,
}

#[derive(Debug)]
enum EventKind {
    Deliver {
        target: usize,
        msg: u64,
        bytes: Vec<u8>,
    },
    SetLink {
        link: usize,
        up: bool,
    },
}

#[derive(Debug)]
struct Event {
    at: u64,
    id: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.id) == (other.at, other.id)
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    // Reversed so BinaryHeap::pop yields the earliest (at, id).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.id).cmp(&(self.at, self.id))
    }
}

#[derive(Debug, Default)]
struct HubState {
    queue: BinaryHeap<Event>,
    next_event_id: u64,
    endpoints: Vec<EndpointState>,
    links: Vec<LinkState>,
    msgs: Vec<MsgRecord>,
    /// `(target endpoint, msg id)` in global delivery order.
    delivery_log: Vec<(usize, u64)>,
    trace: Vec<String>,
}

impl HubState {
    fn push_event(&mut self, at: u64, kind: EventKind) {
        let id = self.next_event_id;
        self.next_event_id += 1;
        self.queue.push(Event { at, id, kind });
    }

    fn held_endpoint(&self) -> Option<usize> {
        (0..self.endpoints.len())
            .find(|&e| matches!(self.endpoints[e].egress.hold, Hold::Held { .. }))
    }
}

type Actor = Box<dyn FnMut() + Send>;

struct Hub {
    clock: Arc<SimClock>,
    st: Mutex<HubState>,
    actors: Mutex<Vec<Option<Actor>>>,
}

impl Hub {
    /// Processes one event (or flushes one held frame once the queue is
    /// empty). Returns false when there is nothing left to do.
    fn pump_one(self: &Arc<Self>) -> bool {
        let mut wake: Vec<usize> = Vec::new();
        let progressed = {
            let mut st = self.st.lock();
            if let Some(ev) = st.queue.pop() {
                self.clock.advance_to(ev.at);
                match ev.kind {
                    EventKind::Deliver { target, msg, bytes } => {
                        let line = format!(
                            "t={} m{} deliver {}",
                            ev.at, msg, st.endpoints[target].label
                        );
                        st.trace.push(line);
                        st.msgs[msg as usize].delivered_at.push(ev.at);
                        st.delivery_log.push((target, msg));
                        st.endpoints[target].inbox.push_back((msg, bytes));
                        wake.push(target);
                    }
                    EventKind::SetLink { link, up } => {
                        st.links[link].up = up;
                        let line = format!(
                            "t={} link {} {}",
                            ev.at,
                            st.links[link].name,
                            if up { "up" } else { "down" }
                        );
                        st.trace.push(line);
                        if up {
                            for (idx, ep) in st.endpoints.iter().enumerate() {
                                if ep.link == link {
                                    wake.push(idx);
                                }
                            }
                        }
                    }
                }
                true
            } else if let Some(ep) = st.held_endpoint() {
                let Hold::Held {
                    msg,
                    bytes,
                    deliver_at,
                } = std::mem::replace(&mut st.endpoints[ep].egress.hold, Hold::Off)
                else {
                    unreachable!("held_endpoint checked the variant");
                };
                let at = deliver_at.max(self.clock.now());
                self.clock.advance_to(at);
                let target = st.endpoints[ep].peer;
                let line = format!(
                    "t={} m{} deliver {} (released)",
                    at, msg, st.endpoints[target].label
                );
                st.trace.push(line);
                st.msgs[msg as usize].delivered_at.push(at);
                st.delivery_log.push((target, msg));
                st.endpoints[target].inbox.push_back((msg, bytes));
                wake.push(target);
                true
            } else {
                false
            }
        };
        for target in wake {
            self.run_actor(target);
        }
        progressed
    }

    /// Runs an endpoint's actor, if one is registered and not already
    /// running further up the stack.
    fn run_actor(self: &Arc<Self>, target: usize) {
        let actor = {
            let mut actors = self.actors.lock();
            if target >= actors.len() {
                return;
            }
            actors[target].take()
        };
        if let Some(mut actor) = actor {
            actor();
            self.actors.lock()[target] = Some(actor);
        }
    }
}

/// The simulation hub: creates links, owns the event queue and the
/// virtual clock, and records the trace.
///
/// Single-threaded by design — determinism comes from one caller
/// driving the world. All handles (`SimTransport`, `SimLinkCtl`) share
/// the hub.
pub struct SimNet {
    hub: Arc<Hub>,
}

impl Default for SimNet {
    fn default() -> Self {
        Self::new()
    }
}

impl SimNet {
    /// Creates an empty network with a fresh clock at t = 0.
    pub fn new() -> Self {
        Self {
            hub: Arc::new(Hub {
                clock: SimClock::new(),
                st: Mutex::new(HubState::default()),
                actors: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> Arc<SimClock> {
        Arc::clone(&self.hub.clock)
    }

    /// Adds a duplex link named `name` with a symmetric per-frame
    /// `delay`; returns the two endpoints (`a` = primary side by
    /// convention) and the fault-control handle.
    pub fn add_link(
        &self,
        name: &str,
        delay: Duration,
    ) -> (SimTransport, SimTransport, SimLinkCtl) {
        let delay = delay.as_nanos() as u64;
        let mut st = self.hub.st.lock();
        let link = st.links.len();
        st.links.push(LinkState {
            name: name.to_string(),
            up: true,
        });
        let a = st.endpoints.len();
        let b = a + 1;
        st.endpoints.push(EndpointState {
            label: format!("{name}.a"),
            link,
            peer: b,
            inbox: VecDeque::new(),
            egress: Egress::new(delay),
        });
        st.endpoints.push(EndpointState {
            label: format!("{name}.b"),
            link,
            peer: a,
            inbox: VecDeque::new(),
            egress: Egress::new(delay),
        });
        drop(st);
        let mut actors = self.hub.actors.lock();
        actors.push(None);
        actors.push(None);
        drop(actors);
        let make = |ep: usize| SimTransport {
            hub: Arc::clone(&self.hub),
            ep,
            meter: TrafficMeter::shared(crate::LinkModel::t1()),
        };
        (
            make(a),
            make(b),
            SimLinkCtl {
                hub: Arc::clone(&self.hub),
                link,
                a,
                b,
            },
        )
    }

    /// Registers `actor` to run whenever a frame is delivered to
    /// `endpoint` (or its link is restored). Actors must drain with
    /// [`SimTransport::try_recv`] and never block.
    pub fn set_actor(&self, endpoint: &SimTransport, actor: Actor) {
        self.hub.actors.lock()[endpoint.ep] = Some(actor);
    }

    /// Pumps every pending event; returns how many were processed.
    pub fn run_until_idle(&self) -> usize {
        let mut n = 0;
        while self.hub.pump_one() {
            n += 1;
        }
        n
    }

    /// The human-readable event trace so far (deterministic).
    pub fn trace(&self) -> Vec<String> {
        self.hub.st.lock().trace.clone()
    }

    /// Every message ever sent, with its delivery fate.
    pub fn message_log(&self) -> Vec<MsgRecord> {
        self.hub.st.lock().msgs.clone()
    }

    /// `(target endpoint index, msg id)` pairs in delivery order.
    pub fn delivery_log(&self) -> Vec<(usize, u64)> {
        self.hub.st.lock().delivery_log.clone()
    }
}

impl std::fmt::Debug for SimNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.hub.st.lock();
        f.debug_struct("SimNet")
            .field("now", &self.hub.clock.now())
            .field("links", &st.links.len())
            .field("queued_events", &st.queue.len())
            .field("messages", &st.msgs.len())
            .finish()
    }
}

/// Fault controls for one link (both directions).
#[derive(Clone)]
pub struct SimLinkCtl {
    hub: Arc<Hub>,
    link: usize,
    a: usize,
    b: usize,
}

impl SimLinkCtl {
    fn ep(&self, dir: Dir) -> usize {
        match dir {
            Dir::AtoB => self.a,
            Dir::BtoA => self.b,
        }
    }

    /// Cuts the link now: sends and receives fail on both endpoints
    /// until restored. Frames already in flight are preserved.
    pub fn sever(&self) {
        let mut st = self.hub.st.lock();
        st.links[self.link].up = false;
        let line = format!(
            "t={} link {} down",
            self.hub.clock.now(),
            st.links[self.link].name
        );
        st.trace.push(line);
    }

    /// Brings the link back up now and wakes both endpoints' actors so
    /// frames queued during the outage get processed.
    pub fn restore(&self) {
        {
            let mut st = self.hub.st.lock();
            st.links[self.link].up = true;
            let line = format!(
                "t={} link {} up",
                self.hub.clock.now(),
                st.links[self.link].name
            );
            st.trace.push(line);
        }
        self.hub.run_actor(self.a);
        self.hub.run_actor(self.b);
    }

    /// Whether the link is currently up.
    pub fn is_up(&self) -> bool {
        self.hub.st.lock().links[self.link].up
    }

    /// Schedules a sever at virtual time `at` nanoseconds.
    pub fn sever_at(&self, at: u64) {
        self.hub.st.lock().push_event(
            at,
            EventKind::SetLink {
                link: self.link,
                up: false,
            },
        );
    }

    /// Schedules a restore at virtual time `at` nanoseconds.
    pub fn restore_at(&self, at: u64) {
        self.hub.st.lock().push_event(
            at,
            EventKind::SetLink {
                link: self.link,
                up: true,
            },
        );
    }

    /// Sets the per-frame delay of `dir` (plus `per_kb` per KiB of
    /// payload) — the virtual WAN cost. No real time is ever spent.
    pub fn set_delay(&self, dir: Dir, per_msg: Duration, per_kb: Duration) {
        let ep = self.ep(dir);
        let mut st = self.hub.st.lock();
        st.endpoints[ep].egress.delay = per_msg.as_nanos() as u64;
        st.endpoints[ep].egress.per_kb = per_kb.as_nanos() as u64;
    }

    /// Drops the next `n` frames sent in `dir` (network loss — the
    /// sender still observes a successful send).
    pub fn drop_next(&self, dir: Dir, n: u32) {
        let ep = self.ep(dir);
        self.hub.st.lock().endpoints[ep].egress.drop_next = n;
    }

    /// Duplicates the next `n` frames sent in `dir` (each is delivered
    /// twice, back to back).
    pub fn dup_next(&self, dir: Dir, n: u32) {
        let ep = self.ep(dir);
        self.hub.st.lock().endpoints[ep].egress.dup_next = n;
    }

    /// Flips one bit in each of the next `n` frames sent in `dir` —
    /// in-flight corruption the receiver's integrity check must catch.
    /// The sender still observes a successful send and the frame length
    /// is unchanged, so only a checksum can tell.
    pub fn corrupt_next(&self, dir: Dir, n: u32) {
        let ep = self.ep(dir);
        self.hub.st.lock().endpoints[ep].egress.corrupt_next = n;
    }

    /// Reorders the next two frames sent in `dir`: the first is held
    /// and delivered just after the second. If no second frame is ever
    /// sent, the held frame is released when the event queue drains.
    pub fn reorder_next(&self, dir: Dir) {
        let ep = self.ep(dir);
        self.hub.st.lock().endpoints[ep].egress.hold = Hold::Armed;
    }

    /// Clears drop/dup/reorder/corrupt faults in both directions,
    /// releasing any held frame for normal delivery (delays are kept).
    pub fn clear_faults(&self) {
        let mut st = self.hub.st.lock();
        for ep in [self.a, self.b] {
            st.endpoints[ep].egress.drop_next = 0;
            st.endpoints[ep].egress.dup_next = 0;
            st.endpoints[ep].egress.corrupt_next = 0;
            if let Hold::Held {
                msg,
                bytes,
                deliver_at,
            } = std::mem::replace(&mut st.endpoints[ep].egress.hold, Hold::Off)
            {
                let target = st.endpoints[ep].peer;
                let at = deliver_at.max(self.hub.clock.now());
                st.push_event(at, EventKind::Deliver { target, msg, bytes });
            } else {
                st.endpoints[ep].egress.hold = Hold::Off;
            }
        }
    }
}

impl std::fmt::Debug for SimLinkCtl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimLinkCtl")
            .field("link", &self.link)
            .finish()
    }
}

/// One endpoint of a simulated link; implements [`Transport`].
///
/// Clone freely — clones share the endpoint (and its meter), which is
/// how a replica actor and the harness can both hold the replica side.
#[derive(Clone)]
pub struct SimTransport {
    hub: Arc<Hub>,
    ep: usize,
    meter: Arc<TrafficMeter>,
}

impl SimTransport {
    /// Non-blocking receive that never pumps the event queue — the only
    /// receive an actor may use. `Ok(None)` = inbox empty.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] while the link is severed.
    pub fn try_recv(&self) -> Result<Option<Vec<u8>>, NetError> {
        let mut st = self.hub.st.lock();
        let link = st.endpoints[self.ep].link;
        if !st.links[link].up {
            return Err(NetError::Disconnected);
        }
        match st.endpoints[self.ep].inbox.pop_front() {
            Some((msg, bytes)) => {
                let line = format!(
                    "t={} m{} recv {}",
                    self.hub.clock.now(),
                    msg,
                    st.endpoints[self.ep].label
                );
                st.trace.push(line);
                self.meter.record_recv(bytes.len());
                Ok(Some(bytes))
            }
            None => Ok(None),
        }
    }

    /// The endpoint's index within the hub (stable; used by invariant
    /// checkers to filter [`SimNet::delivery_log`]).
    pub fn endpoint_index(&self) -> usize {
        self.ep
    }
}

impl Transport for SimTransport {
    fn send(&self, msg_bytes: &[u8]) -> Result<(), NetError> {
        let mut st = self.hub.st.lock();
        let now = self.hub.clock.now();
        let link = st.endpoints[self.ep].link;
        if !st.links[link].up {
            let line = format!(
                "t={} {} send-fail link-down len={}",
                now,
                st.endpoints[self.ep].label,
                msg_bytes.len()
            );
            st.trace.push(line);
            return Err(NetError::Disconnected);
        }
        self.meter.record_send(msg_bytes.len());
        let msg = st.msgs.len() as u64;
        let from_label = st.endpoints[self.ep].label.clone();
        st.msgs.push(MsgRecord {
            id: msg,
            from: self.ep,
            from_label: from_label.clone(),
            sent_at: now,
            payload: msg_bytes.to_vec(),
            delivered_at: Vec::new(),
            dropped: false,
        });
        let line = format!("t={now} m{msg} send {from_label} len={}", msg_bytes.len());
        st.trace.push(line);

        let eg = &mut st.endpoints[self.ep].egress;
        if eg.drop_next > 0 {
            eg.drop_next -= 1;
            st.msgs[msg as usize].dropped = true;
            let line = format!("t={now} m{msg} dropped");
            st.trace.push(line);
            return Ok(());
        }
        let mut wire_bytes = msg_bytes.to_vec();
        if eg.corrupt_next > 0 && !wire_bytes.is_empty() {
            eg.corrupt_next -= 1;
            // One deterministic bit flip mid-frame; length (and thus
            // byte accounting) is unchanged.
            let at = wire_bytes.len() / 2;
            wire_bytes[at] ^= 0x01;
            st.msgs[msg as usize].payload = wire_bytes.clone();
            let line = format!("t={now} m{msg} corrupted at byte {at}");
            st.trace.push(line);
        }
        let eg = &mut st.endpoints[self.ep].egress;
        let deliver_at = now + eg.delay + eg.per_kb * (wire_bytes.len() as u64).div_ceil(1024);
        if matches!(eg.hold, Hold::Armed) {
            eg.hold = Hold::Held {
                msg,
                bytes: wire_bytes,
                deliver_at,
            };
            let line = format!("t={now} m{msg} held");
            st.trace.push(line);
            return Ok(());
        }
        let dup = if eg.dup_next > 0 {
            eg.dup_next -= 1;
            true
        } else {
            false
        };
        let released = match std::mem::replace(&mut eg.hold, Hold::Off) {
            Hold::Held {
                msg: held_msg,
                bytes,
                deliver_at: held_at,
            } => Some((held_msg, bytes, held_at)),
            other => {
                st.endpoints[self.ep].egress.hold = other;
                None
            }
        };
        let target = st.endpoints[self.ep].peer;
        st.push_event(
            deliver_at,
            EventKind::Deliver {
                target,
                msg,
                bytes: wire_bytes.clone(),
            },
        );
        if dup {
            let line = format!("t={now} m{msg} dup");
            st.trace.push(line);
            st.push_event(
                deliver_at,
                EventKind::Deliver {
                    target,
                    msg,
                    bytes: wire_bytes,
                },
            );
        }
        if let Some((held_msg, bytes, held_at)) = released {
            // Same timestamp, later event id: delivered right after the
            // frame that released it — the reorder swap.
            let line = format!("t={now} m{held_msg} released-after m{msg}");
            st.trace.push(line);
            st.push_event(
                deliver_at.max(held_at),
                EventKind::Deliver {
                    target,
                    msg: held_msg,
                    bytes,
                },
            );
        }
        Ok(())
    }

    fn recv(&self) -> Result<Vec<u8>, NetError> {
        loop {
            if let Some(bytes) = self.try_recv()? {
                return Ok(bytes);
            }
            if !self.hub.pump_one() {
                return Err(NetError::Disconnected);
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, NetError> {
        let deadline = self
            .hub
            .clock
            .now()
            .saturating_add(timeout.as_nanos() as u64);
        loop {
            {
                let mut st = self.hub.st.lock();
                let link = st.endpoints[self.ep].link;
                if !st.links[link].up {
                    return Err(NetError::Disconnected);
                }
                if let Some((msg, bytes)) = st.endpoints[self.ep].inbox.pop_front() {
                    let line = format!(
                        "t={} m{} recv {}",
                        self.hub.clock.now(),
                        msg,
                        st.endpoints[self.ep].label
                    );
                    st.trace.push(line);
                    self.meter.record_recv(bytes.len());
                    return Ok(bytes);
                }
                let out_of_reach = match st.queue.peek() {
                    None => st.held_endpoint().is_none(),
                    Some(ev) => ev.at > deadline,
                };
                if out_of_reach {
                    self.hub.clock.advance_to(deadline);
                    let line = format!(
                        "t={} {} recv-timeout",
                        deadline, st.endpoints[self.ep].label
                    );
                    st.trace.push(line);
                    return Err(NetError::Timeout);
                }
            }
            self.hub.pump_one();
        }
    }

    fn meter(&self) -> &Arc<TrafficMeter> {
        &self.meter
    }
}

impl std::fmt::Debug for SimTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimTransport")
            .field("ep", &self.ep)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_tick_advances_time_per_clock_read() {
        let clock = SimClock::new();
        assert_eq!(clock.now_nanos(), 0, "tick disabled by default");
        assert_eq!(clock.now_nanos(), 0);
        clock.set_auto_tick(250);
        assert_eq!(clock.now_nanos(), 250);
        assert_eq!(clock.now_nanos(), 500);
        assert_eq!(clock.now(), 500, "now() itself never ticks");
        clock.set_auto_tick(0);
        assert_eq!(clock.now_nanos(), 500);
    }

    #[test]
    fn delivery_advances_virtual_time_only() {
        let net = SimNet::new();
        let (a, b, _ctl) = net.add_link("l0", Duration::from_millis(5));
        let wall = std::time::Instant::now();
        a.send(b"frame").unwrap();
        assert_eq!(net.clock().now(), 0, "send itself costs nothing");
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), b"frame");
        assert_eq!(net.clock().now(), 5_000_000);
        assert!(wall.elapsed() < Duration::from_millis(50), "no real sleep");
    }

    #[test]
    fn timeout_jumps_the_clock_to_the_deadline() {
        let net = SimNet::new();
        let (_a, b, _ctl) = net.add_link("l0", Duration::ZERO);
        let err = b.recv_timeout(Duration::from_secs(10)).unwrap_err();
        assert!(matches!(err, NetError::Timeout));
        assert_eq!(net.clock().now(), 10_000_000_000);
    }

    #[test]
    fn dropped_frames_send_ok_but_never_arrive() {
        let net = SimNet::new();
        let (a, b, ctl) = net.add_link("l0", Duration::ZERO);
        ctl.drop_next(Dir::AtoB, 1);
        a.send(b"lost").unwrap();
        a.send(b"kept").unwrap();
        assert_eq!(b.recv_timeout(Duration::from_millis(1)).unwrap(), b"kept");
        assert!(b.recv_timeout(Duration::from_millis(1)).is_err());
        let log = net.message_log();
        assert!(log[0].dropped && log[0].delivered_at.is_empty());
        assert_eq!(log[1].delivered_at.len(), 1);
    }

    #[test]
    fn dup_delivers_twice_and_reorder_swaps() {
        let net = SimNet::new();
        let (a, b, ctl) = net.add_link("l0", Duration::ZERO);
        ctl.dup_next(Dir::AtoB, 1);
        a.send(b"x").unwrap();
        assert_eq!(b.recv_timeout(Duration::from_millis(1)).unwrap(), b"x");
        assert_eq!(b.recv_timeout(Duration::from_millis(1)).unwrap(), b"x");

        ctl.reorder_next(Dir::AtoB);
        a.send(b"first").unwrap();
        a.send(b"second").unwrap();
        assert_eq!(b.recv_timeout(Duration::from_millis(1)).unwrap(), b"second");
        assert_eq!(b.recv_timeout(Duration::from_millis(1)).unwrap(), b"first");
    }

    #[test]
    fn corrupt_next_flips_one_bit_then_heals() {
        let net = SimNet::new();
        let (a, b, ctl) = net.add_link("l0", Duration::ZERO);
        ctl.corrupt_next(Dir::AtoB, 1);
        a.send(&[0u8; 8]).unwrap();
        a.send(&[0u8; 8]).unwrap();
        let damaged = b.recv_timeout(Duration::from_millis(1)).unwrap();
        assert_eq!(damaged.iter().filter(|&&x| x != 0).count(), 1);
        assert_eq!(damaged.len(), 8, "corruption never changes the length");
        let clean = b.recv_timeout(Duration::from_millis(1)).unwrap();
        assert_eq!(clean, vec![0u8; 8]);
        // The message log records what the wire actually carried.
        assert_eq!(net.message_log()[0].payload, damaged);
        // clear_faults resets a pending corruption budget.
        ctl.corrupt_next(Dir::AtoB, 5);
        ctl.clear_faults();
        a.send(&[0u8; 8]).unwrap();
        assert_eq!(
            b.recv_timeout(Duration::from_millis(1)).unwrap(),
            vec![0u8; 8]
        );
    }

    #[test]
    fn reorder_hold_flushes_when_queue_drains() {
        let net = SimNet::new();
        let (a, b, ctl) = net.add_link("l0", Duration::ZERO);
        ctl.reorder_next(Dir::AtoB);
        a.send(b"only").unwrap();
        // No successor frame: the drain releases it.
        assert_eq!(b.recv_timeout(Duration::from_millis(1)).unwrap(), b"only");
    }

    #[test]
    fn severed_link_fails_both_ends_and_preserves_in_flight() {
        let net = SimNet::new();
        let (a, b, ctl) = net.add_link("l0", Duration::ZERO);
        a.send(b"pre-sever").unwrap();
        ctl.sever();
        assert!(matches!(a.send(b"x"), Err(NetError::Disconnected)));
        assert!(matches!(
            b.recv_timeout(Duration::from_millis(1)),
            Err(NetError::Disconnected)
        ));
        ctl.restore();
        assert_eq!(
            b.recv_timeout(Duration::from_millis(1)).unwrap(),
            b"pre-sever"
        );
    }

    #[test]
    fn scheduled_flap_fires_at_virtual_times() {
        let net = SimNet::new();
        let (a, b, ctl) = net.add_link("l0", Duration::from_millis(1));
        ctl.sever_at(2_000_000);
        ctl.restore_at(3_000_000);
        a.send(b"early").unwrap(); // delivered at t=1ms, before the sever
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), b"early");
        net.run_until_idle(); // processes the flap events
        assert!(ctl.is_up());
        assert_eq!(net.clock().now(), 3_000_000);
    }

    #[test]
    fn actor_echoes_on_delivery() {
        let net = SimNet::new();
        let (a, b, _ctl) = net.add_link("l0", Duration::ZERO);
        let b_actor = b.clone();
        net.set_actor(
            &b,
            Box::new(move || {
                while let Ok(Some(frame)) = b_actor.try_recv() {
                    let mut echoed = frame.clone();
                    echoed.push(b'!');
                    let _ = b_actor.send(&echoed);
                }
            }),
        );
        a.send(b"ping").unwrap();
        assert_eq!(a.recv_timeout(Duration::from_secs(1)).unwrap(), b"ping!");
    }

    #[test]
    fn identical_runs_produce_identical_traces() {
        let run = || {
            let net = SimNet::new();
            let (a, b, ctl) = net.add_link("l0", Duration::from_micros(10));
            ctl.dup_next(Dir::AtoB, 1);
            a.send(b"one").unwrap();
            a.send(b"two").unwrap();
            ctl.drop_next(Dir::BtoA, 1);
            let _ = b.recv_timeout(Duration::from_millis(1));
            let _ = b.send(b"ack");
            net.run_until_idle();
            net.trace().join("\n")
        };
        assert_eq!(run(), run());
        assert!(!run().is_empty());
    }

    #[test]
    fn meters_count_successful_sends_only_on_the_sender() {
        let net = SimNet::new();
        let (a, b, ctl) = net.add_link("l0", Duration::ZERO);
        a.send(&[0u8; 100]).unwrap();
        ctl.sever();
        assert!(a.send(&[0u8; 100]).is_err());
        assert_eq!(a.meter().messages_sent(), 1);
        assert_eq!(a.meter().payload_bytes_sent(), 100);
        ctl.restore();
        let _ = b.recv_timeout(Duration::from_millis(1)).unwrap();
        assert_eq!(b.meter().payload_bytes_received(), 100);
    }
}
