//! The paper's WAN link model (§3.3).
//!
//! Replicated data is encapsulated into Ethernet packets of 1.5 KB
//! payload plus 0.112 KB of Ethernet/IP/TCP headers. A T1 line carries
//! 1.544 Mbps ≈ 154.4 KB/s (the paper assumes 10 bits per byte to cover
//! framing); a T3 line 44.736 Mbps ≈ 4473.6 KB/s. Nodal processing delay
//! is 5 µs per packet; propagation delay 1 ms per hop (≈ 200 km at
//! 2·10⁸ m/s).

use std::time::Duration;

/// Parameters of one network link, in the paper's terms.
///
/// # Example
///
/// ```
/// use prins_net::LinkModel;
///
/// let t1 = LinkModel::t1();
/// // An 8 KB block spans 6 packets → 8192 + 6*112 wire bytes.
/// assert_eq!(t1.packets(8192), 6);
/// assert_eq!(t1.wire_bytes(8192), 8192 + 6 * 112);
/// // T3 is ~29x faster than T1.
/// assert!(t1.transmission_delay(8192) > LinkModel::t3().transmission_delay(8192) * 25);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkModel {
    /// Usable bandwidth in bytes per second.
    bandwidth_bytes_per_sec: u64,
    /// Packet payload capacity in bytes (1500 in the paper).
    mtu_payload: usize,
    /// Header bytes added to every packet (112 in the paper).
    header_bytes: usize,
    /// Per-packet nodal processing delay.
    processing: Duration,
    /// Per-hop propagation delay.
    propagation: Duration,
}

impl LinkModel {
    /// Paper constant: packet payload size (1.5 KB).
    pub const MTU_PAYLOAD: usize = 1500;
    /// Paper constant: Ethernet + IP + TCP headers (0.112 KB).
    pub const HEADER_BYTES: usize = 112;

    /// A T1 line: 1.544 Mbps ≈ 154.4 KB/s.
    pub fn t1() -> Self {
        Self::custom(154_400)
    }

    /// A T3 line: 44.736 Mbps ≈ 4473.6 KB/s.
    pub fn t3() -> Self {
        Self::custom(4_473_600)
    }

    /// A gigabit LAN (the paper's testbed switch): ~100 MB/s usable,
    /// negligible propagation.
    pub fn gigabit_lan() -> Self {
        Self {
            bandwidth_bytes_per_sec: 100_000_000,
            mtu_payload: Self::MTU_PAYLOAD,
            header_bytes: Self::HEADER_BYTES,
            processing: Duration::from_micros(5),
            propagation: Duration::from_micros(10),
        }
    }

    /// A WAN link with the paper's packet model and the given usable
    /// bandwidth in bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bytes_per_sec` is zero.
    pub fn custom(bandwidth_bytes_per_sec: u64) -> Self {
        assert!(bandwidth_bytes_per_sec > 0, "bandwidth must be positive");
        Self {
            bandwidth_bytes_per_sec,
            mtu_payload: Self::MTU_PAYLOAD,
            header_bytes: Self::HEADER_BYTES,
            processing: Duration::from_micros(5),
            propagation: Duration::from_millis(1),
        }
    }

    /// Usable bandwidth in bytes per second.
    pub fn bandwidth_bytes_per_sec(&self) -> u64 {
        self.bandwidth_bytes_per_sec
    }

    /// Number of packets a payload of `payload_bytes` occupies (at least
    /// one — a zero-byte message still sends headers).
    pub fn packets(&self, payload_bytes: usize) -> u64 {
        (payload_bytes.div_ceil(self.mtu_payload) as u64).max(1)
    }

    /// Bytes actually on the wire: payload plus per-packet headers.
    ///
    /// This is the paper's `Sd + Sd/1.5 * 0.112` packetization model.
    pub fn wire_bytes(&self, payload_bytes: usize) -> u64 {
        payload_bytes as u64 + self.packets(payload_bytes) * self.header_bytes as u64
    }

    /// Transmission delay `Dtrans` for one message of `payload_bytes`.
    pub fn transmission_delay(&self, payload_bytes: usize) -> Duration {
        Duration::from_secs_f64(
            self.wire_bytes(payload_bytes) as f64 / self.bandwidth_bytes_per_sec as f64,
        )
    }

    /// Router service time per the paper's Equation (4):
    /// `Srouter = Dtrans + Dproc + Dprop`.
    pub fn service_time(&self, payload_bytes: usize) -> Duration {
        self.transmission_delay(payload_bytes) + self.processing + self.propagation
    }

    /// Per-packet nodal processing delay.
    pub fn processing(&self) -> Duration {
        self.processing
    }

    /// Per-hop propagation delay.
    pub fn propagation(&self) -> Duration {
        self.propagation
    }
}

impl Default for LinkModel {
    /// The T1 line used in Figures 8 and 10.
    fn default() -> Self {
        Self::t1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_counts_match_the_paper_model() {
        let l = LinkModel::t1();
        assert_eq!(l.packets(0), 1);
        assert_eq!(l.packets(1), 1);
        assert_eq!(l.packets(1500), 1);
        assert_eq!(l.packets(1501), 2);
        assert_eq!(l.packets(64 * 1024), 44); // 65536/1500 = 43.7
    }

    #[test]
    fn t1_service_time_for_8kb_matches_hand_computation() {
        // Paper: Dtrans = (Sd + Sd/1.5*0.112)/154.4 with Sd in KB.
        // For 8 KB: wire = 8192 + 6*112 = 8864 bytes; 8864/154400 = 57.4ms.
        let t = LinkModel::t1().transmission_delay(8192);
        let expected = 8864.0 / 154_400.0;
        assert!((t.as_secs_f64() - expected).abs() < 1e-9);
        let s = LinkModel::t1().service_time(8192);
        assert!((s.as_secs_f64() - (expected + 0.001 + 0.000_005)).abs() < 1e-9);
    }

    #[test]
    fn t3_is_about_29x_t1() {
        let r = LinkModel::t1().transmission_delay(8192).as_secs_f64()
            / LinkModel::t3().transmission_delay(8192).as_secs_f64();
        assert!((r - 28.97).abs() < 0.1, "ratio {r}");
    }

    #[test]
    fn wire_bytes_monotone_in_payload() {
        let l = LinkModel::t1();
        let mut prev = 0;
        for p in (0..20_000).step_by(333) {
            let w = l.wire_bytes(p);
            assert!(w >= prev);
            assert!(w >= p as u64);
            prev = w;
        }
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = LinkModel::custom(0);
    }
}
