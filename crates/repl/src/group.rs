//! Fan-out replication to a set of replica nodes with acknowledged
//! delivery.

use std::time::Duration;

use prins_block::{BlockDevice, Lba};
use prins_net::Transport;

use crate::{
    decode_ack, encode_ack, encode_digest_ack, seal_frame, Applied, Payload, PayloadBody,
    ReplError, ReplicaApplier, ReplicationMode, Replicator, NAK_CORRUPT,
};

/// Epoch a [`ReplicationGroup`] seals its frames with. The synchronous
/// group has no replica lifecycle (and therefore no rejoins), so its
/// single connection generation is simply "1"; only the cluster bumps
/// epochs.
const SYNC_EPOCH: u64 = 1;

/// Acknowledgement byte a replica returns after applying a payload.
pub const ACK: u8 = 0x06;
/// Negative acknowledgement (apply failed).
pub const NAK: u8 = 0x15;

/// When the primary waits for replica acknowledgements.
///
/// The paper's queueing model assumes [`AckPolicy::PerWrite`]: "a
/// computing node will not generate another write request until the
/// previous write is successfully replicated". [`AckPolicy::Window`]
/// pipelines up to `n` unacknowledged writes, hiding WAN round-trips —
/// a natural extension the paper leaves on the table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AckPolicy {
    /// Wait for every replica's acknowledgement before returning.
    PerWrite,
    /// Allow up to this many writes in flight before collecting acks.
    Window(usize),
}

impl AckPolicy {
    fn allowed_outstanding(self) -> u64 {
        match self {
            AckPolicy::PerWrite => 0,
            AckPolicy::Window(n) => n.max(1) as u64,
        }
    }
}

/// A primary's view of its replica set.
///
/// Every replicated write is encoded once by the configured strategy and
/// sent to each replica; `replicate` then blocks for all acknowledgements
/// — the closed-loop behaviour the paper's queueing model assumes ("a
/// computing node will not generate another write request until the
/// previous write is successfully replicated").
pub struct ReplicationGroup {
    replicator: Box<dyn Replicator>,
    replicas: Vec<Box<dyn Transport>>,
    ack_timeout: Duration,
    ack_policy: AckPolicy,
    outstanding: u64,
    writes_replicated: u64,
}

impl ReplicationGroup {
    /// Creates a group replicating with `mode` to `replicas`.
    pub fn new(mode: ReplicationMode, replicas: Vec<Box<dyn Transport>>) -> Self {
        Self {
            replicator: mode.replicator(),
            replicas,
            ack_timeout: Duration::from_secs(10),
            ack_policy: AckPolicy::PerWrite,
            outstanding: 0,
            writes_replicated: 0,
        }
    }

    /// Overrides the acknowledgement timeout.
    pub fn with_ack_timeout(mut self, timeout: Duration) -> Self {
        self.ack_timeout = timeout;
        self
    }

    /// Overrides when acknowledgements are awaited.
    pub fn with_ack_policy(mut self, policy: AckPolicy) -> Self {
        self.ack_policy = policy;
        self
    }

    /// Writes sent but not yet acknowledged by every replica.
    pub fn outstanding(&self) -> u64 {
        self.outstanding
    }

    /// Number of replica nodes.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Writes acknowledged by all replicas so far.
    pub fn writes_replicated(&self) -> u64 {
        self.writes_replicated
    }

    /// Deconstructs the group, returning the replica transports.
    ///
    /// Used to hand connections from a synchronous group (e.g. after
    /// [`initial_sync`](Self::initial_sync)) to the engine's pipelined
    /// per-replica senders. In-flight acknowledgements are drained
    /// first on a best-effort basis so the next owner starts with a
    /// quiet wire.
    pub fn into_transports(mut self) -> Vec<Box<dyn Transport>> {
        let _ = self.drain_acks();
        self.replicas
    }

    /// Total payload bytes sent to replica `idx` so far (from its
    /// transport meter).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn payload_bytes_to(&self, idx: usize) -> u64 {
        self.replicas[idx].meter().payload_bytes_sent()
    }

    /// Replicates one write to every replica and waits for all acks.
    ///
    /// # Errors
    ///
    /// * [`ReplError::Net`] if a replica is unreachable,
    /// * [`ReplError::Nak`] if a replica rejects the write,
    /// * [`ReplError::MissingAck`] if a replica answers with an
    ///   unrecognizable acknowledgement.
    pub fn replicate(&mut self, lba: Lba, old: &[u8], new: &[u8]) -> Result<(), ReplError> {
        let payload = self.encode(lba, old, new);
        self.replicate_payload(&payload)
    }

    /// Encodes a write with the group's strategy without sending it.
    ///
    /// Exposed so callers (e.g. the PRINS engine's replication thread)
    /// can account encoding time separately from transmission time.
    pub fn encode(&self, lba: Lba, old: &[u8], new: &[u8]) -> Vec<u8> {
        self.replicator.encode_write(lba, old, new)
    }

    /// Sends a pre-encoded payload to every replica and waits for all
    /// acknowledgements.
    ///
    /// # Errors
    ///
    /// Same conditions as [`replicate`](Self::replicate).
    pub fn replicate_payload(&mut self, payload: &[u8]) -> Result<(), ReplError> {
        let sealed = seal_frame(SYNC_EPOCH, payload);
        for replica in &self.replicas {
            replica.send(&sealed)?;
        }
        self.outstanding += 1;
        while self.outstanding > self.ack_policy.allowed_outstanding() {
            self.collect_one_ack_round()?;
        }
        Ok(())
    }

    /// Collects one acknowledgement from every replica (one in-flight
    /// write retires).
    fn collect_one_ack_round(&mut self) -> Result<(), ReplError> {
        // The write retires regardless of outcome: a NAK or a dead
        // transport never produces a matching ack later.
        self.outstanding -= 1;
        for idx in 0..self.replicas.len() {
            self.await_ack(idx)?;
        }
        self.writes_replicated += 1;
        Ok(())
    }

    /// Waits for a single acknowledgement frame from replica `idx` and
    /// classifies it: ACK succeeds, NAK becomes [`ReplError::Nak`], and
    /// anything else [`ReplError::MissingAck`] carrying the stray byte.
    fn await_ack(&self, idx: usize) -> Result<(), ReplError> {
        let frame = self.replicas[idx].recv_timeout(self.ack_timeout)?;
        match decode_ack(&frame) {
            Ok(ack) if ack.status == ACK => Ok(()),
            // The synchronous group has no retransmit buffer, so a
            // corrupt-frame NAK surfaces like any other rejection.
            Ok(_) => Err(ReplError::Nak { replica: idx }),
            Err(_) => Err(ReplError::MissingAck {
                replica: idx,
                got: frame.first().copied(),
            }),
        }
    }

    /// Waits until every in-flight write is acknowledged (the barrier a
    /// flush needs under [`AckPolicy::Window`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`replicate`](Self::replicate).
    pub fn drain_acks(&mut self) -> Result<(), ReplError> {
        while self.outstanding > 0 {
            self.collect_one_ack_round()?;
        }
        Ok(())
    }

    /// Pushes a full image of `source` to every replica (the paper's
    /// "initial sync among the replica nodes"), ending with a sync
    /// marker.
    ///
    /// Sync traffic flows through the same windowed-acknowledgement
    /// path as replicated writes, so under [`AckPolicy::Window`] the
    /// bulk transfer pipelines instead of stalling one round-trip per
    /// block; the final marker acts as a barrier draining all acks.
    ///
    /// # Errors
    ///
    /// Propagates device and transport failures; fails on any NAK.
    pub fn initial_sync<D: BlockDevice + ?Sized>(&mut self, source: &D) -> Result<(), ReplError> {
        let before = self.writes_replicated;
        let geometry = source.geometry();
        for lba in geometry.range().iter() {
            let block = source.read_block_vec(lba)?;
            let payload = Payload {
                lba,
                body: PayloadBody::Full(block),
            }
            .to_bytes();
            self.replicate_payload(&payload)?;
        }
        let marker = Payload {
            lba: Lba(0),
            body: PayloadBody::SyncMarker,
        }
        .to_bytes();
        self.replicate_payload(&marker)?;
        self.drain_acks()?;
        // Sync frames are not replicated writes: keep the counter the
        // paper's model cares about (foreground writes) untouched.
        self.writes_replicated = before;
        Ok(())
    }
}

impl std::fmt::Debug for ReplicationGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicationGroup")
            .field("strategy", &self.replicator.name())
            .field("replicas", &self.replicas.len())
            .field("writes_replicated", &self.writes_replicated)
            .finish()
    }
}

/// Runs a replica node: applies every incoming payload to `device` and
/// acknowledges it, until the peer disconnects.
///
/// Sync markers are acknowledged but not counted. Returns the number of
/// write payloads applied.
///
/// # Errors
///
/// Local device failures NAK the offending payload and abort with the
/// error; transport disconnect is a clean return.
pub fn run_replica<D, T>(device: &D, transport: &T) -> Result<u64, ReplError>
where
    D: BlockDevice + ?Sized,
    T: Transport,
{
    run_replica_applier(ReplicaApplier::new(device), transport)
}

/// [`run_replica`] with a caller-built applier — the hook for replicas
/// that need a non-default configuration, e.g. a Reed–Solomon
/// [`ErasureCodec`](prins_parity::ErasureCodec) for parity strips of an
/// erasure-coded group, or strict [`require_sealed`] mode.
///
/// # Errors
///
/// As [`run_replica`].
///
/// [`require_sealed`]: ReplicaApplier::require_sealed
pub fn run_replica_applier<D, T>(
    mut applier: ReplicaApplier<D>,
    transport: &T,
) -> Result<u64, ReplError>
where
    D: BlockDevice,
    T: Transport,
{
    loop {
        let payload = match transport.recv() {
            Ok(p) => p,
            Err(prins_net::NetError::Disconnected) => return Ok(applier.applied()),
            Err(e) => return Err(e.into()),
        };
        match applier.handle(&payload) {
            Ok(Applied::Data(_)) => transport.send(&encode_ack(ACK, applier.last_epoch()))?,
            Ok(Applied::Digest(digest)) => {
                transport.send(&encode_digest_ack(applier.last_epoch(), digest))?;
            }
            Ok(Applied::Strip(sparse)) => {
                transport.send(&crate::encode_strip_ack(applier.last_epoch(), &sparse))?;
            }
            Ok(Applied::Read(sparse)) => {
                transport.send(&crate::encode_read_ack(applier.last_epoch(), &sparse))?;
            }
            Err(ReplError::ChecksumMismatch { .. }) => {
                // The frame was damaged, not invalid — ask for a
                // retransmit and stay up; nothing was applied.
                transport.send(&encode_ack(NAK_CORRUPT, applier.last_epoch()))?;
            }
            Err(e) => {
                transport.send(&encode_ack(NAK, applier.last_epoch()))?;
                return Err(e);
            }
        }
    }
}

/// Compares two devices block by block.
///
/// # Errors
///
/// Propagates read failures from either device.
pub fn verify_consistent<A, B>(a: &A, b: &B) -> Result<bool, ReplError>
where
    A: BlockDevice + ?Sized,
    B: BlockDevice + ?Sized,
{
    if a.geometry() != b.geometry() {
        return Ok(false);
    }
    for lba in a.geometry().range().iter() {
        if a.read_block_vec(lba)? != b.read_block_vec(lba)? {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prins_block::{BlockSize, MemDevice};
    use prins_net::{channel_pair, LinkModel};
    use rand::{RngExt, SeedableRng};
    use std::sync::Arc;

    /// Spins up `n` replica threads and a group configured with `mode`.
    #[allow(clippy::type_complexity)]
    fn group_with_replicas(
        mode: ReplicationMode,
        n: usize,
        bs: BlockSize,
        blocks: u64,
    ) -> (
        ReplicationGroup,
        Vec<Arc<MemDevice>>,
        Vec<std::thread::JoinHandle<Result<u64, ReplError>>>,
    ) {
        let mut transports: Vec<Box<dyn Transport>> = Vec::new();
        let mut devices = Vec::new();
        let mut handles = Vec::new();
        for _ in 0..n {
            let (primary_side, replica_side) = channel_pair(LinkModel::t1());
            let device = Arc::new(MemDevice::new(bs, blocks));
            let dev = Arc::clone(&device);
            handles.push(std::thread::spawn(move || {
                run_replica(&*dev, &replica_side)
            }));
            transports.push(Box::new(primary_side));
            devices.push(device);
        }
        (ReplicationGroup::new(mode, transports), devices, handles)
    }

    fn exercise(mode: ReplicationMode) {
        let primary = MemDevice::new(BlockSize::kb4(), 16);
        let (mut group, replicas, handles) = group_with_replicas(mode, 2, BlockSize::kb4(), 16);
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);

        // Seed the primary with data, then sync it over.
        for lba in 0..16u64 {
            let mut block = vec![0u8; 4096];
            rng.fill_bytes(&mut block);
            primary.write_block(Lba(lba), &block).unwrap();
        }
        group.initial_sync(&primary).unwrap();

        // Replicated writes.
        for _ in 0..50 {
            let lba = Lba(rng.random_range(0..16));
            let old = primary.read_block_vec(lba).unwrap();
            let mut new = old.clone();
            let at = rng.random_range(0..4000);
            for b in &mut new[at..at + 64] {
                *b = rng.random();
            }
            primary.write_block(lba, &new).unwrap();
            group.replicate(lba, &old, &new).unwrap();
        }
        assert_eq!(group.writes_replicated(), 50);

        drop(group); // hang up; replica loops exit
        for (h, dev) in handles.into_iter().zip(&replicas) {
            h.join().unwrap().unwrap();
            assert!(verify_consistent(&primary, &**dev).unwrap(), "{mode}");
        }
    }

    #[test]
    fn traditional_group_converges() {
        exercise(ReplicationMode::Traditional);
    }

    #[test]
    fn compressed_group_converges() {
        exercise(ReplicationMode::Compressed);
    }

    #[test]
    fn prins_group_converges() {
        exercise(ReplicationMode::Prins);
    }

    #[test]
    fn prins_compressed_group_converges() {
        exercise(ReplicationMode::PrinsCompressed);
    }

    #[test]
    fn prins_sends_far_fewer_bytes_than_traditional() {
        let mut totals = Vec::new();
        for mode in [ReplicationMode::Traditional, ReplicationMode::Prins] {
            let primary = MemDevice::new(BlockSize::kb8(), 8);
            let (mut group, _replicas, handles) = group_with_replicas(mode, 1, BlockSize::kb8(), 8);
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            group.initial_sync(&primary).unwrap();
            let sync_bytes = group.payload_bytes_to(0);
            for _ in 0..20 {
                let lba = Lba(rng.random_range(0..8));
                let old = primary.read_block_vec(lba).unwrap();
                let mut new = old.clone();
                let at = rng.random_range(0..8000);
                for b in &mut new[at..at + 100] {
                    *b = rng.random();
                }
                primary.write_block(lba, &new).unwrap();
                group.replicate(lba, &old, &new).unwrap();
            }
            totals.push(group.payload_bytes_to(0) - sync_bytes);
            drop(group);
            for h in handles {
                h.join().unwrap().unwrap();
            }
        }
        assert!(
            totals[1] * 10 < totals[0],
            "prins {} should be >10x below traditional {}",
            totals[1],
            totals[0]
        );
    }

    #[test]
    fn windowed_acks_pipeline_and_drain() {
        let (mut group, replicas, handles) =
            group_with_replicas(ReplicationMode::Prins, 1, BlockSize::kb4(), 16);
        group = group.with_ack_policy(AckPolicy::Window(8));
        let primary = MemDevice::new(BlockSize::kb4(), 16);
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        for i in 0..24u64 {
            let lba = Lba(i % 16);
            let old = primary.read_block_vec(lba).unwrap();
            let mut new = old.clone();
            let at = rng.random_range(0..4000);
            new[at] ^= 0xff;
            primary.write_block(lba, &new).unwrap();
            group.replicate(lba, &old, &new).unwrap();
            assert!(group.outstanding() <= 8, "window exceeded");
        }
        // Some writes are still in flight; the barrier collects them.
        group.drain_acks().unwrap();
        assert_eq!(group.outstanding(), 0);
        assert_eq!(group.writes_replicated(), 24);
        drop(group);
        for (h, dev) in handles.into_iter().zip(&replicas) {
            h.join().unwrap().unwrap();
            assert!(verify_consistent(&primary, &**dev).unwrap());
        }
    }

    #[test]
    fn per_write_policy_never_leaves_writes_outstanding() {
        let (mut group, _replicas, handles) =
            group_with_replicas(ReplicationMode::Traditional, 2, BlockSize::kb4(), 4);
        let old = vec![0u8; 4096];
        let new = vec![1u8; 4096];
        for _ in 0..5 {
            group.replicate(Lba(0), &old, &new).unwrap();
            assert_eq!(group.outstanding(), 0);
        }
        drop(group);
        for h in handles {
            h.join().unwrap().unwrap();
        }
    }

    #[test]
    fn replica_nak_surfaces_as_nak() {
        // Replica device too small: first replicated write is out of
        // range there and NAKs.
        let (primary_side, replica_side) = channel_pair(LinkModel::t1());
        let device = Arc::new(MemDevice::new(BlockSize::kb4(), 1));
        let dev = Arc::clone(&device);
        let handle = std::thread::spawn(move || run_replica(&*dev, &replica_side));
        let mut group =
            ReplicationGroup::new(ReplicationMode::Traditional, vec![Box::new(primary_side)]);
        let old = vec![0u8; 4096];
        let new = vec![1u8; 4096];
        let err = group.replicate(Lba(5), &old, &new).unwrap_err();
        assert!(matches!(err, ReplError::Nak { replica: 0 }), "{err}");
        assert!(handle.join().unwrap().is_err());
    }

    #[test]
    fn garbage_ack_surfaces_byte_in_missing_ack() {
        // A "replica" that answers every frame with garbage instead of
        // an ACK/NAK byte.
        let (primary_side, replica_side) = channel_pair(LinkModel::t1());
        let handle = std::thread::spawn(move || {
            let frame = replica_side.recv().unwrap();
            assert!(!frame.is_empty());
            replica_side.send(&[0x7f]).unwrap();
        });
        let mut group =
            ReplicationGroup::new(ReplicationMode::Traditional, vec![Box::new(primary_side)]);
        let err = group
            .replicate(Lba(0), &[0u8; 4096], &[1u8; 4096])
            .unwrap_err();
        assert!(
            matches!(
                err,
                ReplError::MissingAck {
                    replica: 0,
                    got: Some(0x7f)
                }
            ),
            "{err}"
        );
        handle.join().unwrap();
    }

    #[test]
    fn initial_sync_pipelines_under_windowed_acks() {
        let primary = MemDevice::new(BlockSize::kb4(), 32);
        let (mut group, replicas, handles) =
            group_with_replicas(ReplicationMode::Prins, 2, BlockSize::kb4(), 32);
        group = group.with_ack_policy(AckPolicy::Window(16));
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for lba in 0..32u64 {
            let mut block = vec![0u8; 4096];
            rng.fill_bytes(&mut block);
            primary.write_block(Lba(lba), &block).unwrap();
        }
        group.initial_sync(&primary).unwrap();
        // The sync barrier drained everything and sync frames do not
        // count as replicated writes.
        assert_eq!(group.outstanding(), 0);
        assert_eq!(group.writes_replicated(), 0);
        drop(group);
        for (h, dev) in handles.into_iter().zip(&replicas) {
            h.join().unwrap().unwrap();
            assert!(verify_consistent(&primary, &**dev).unwrap());
        }
    }

    #[test]
    fn verify_consistent_detects_divergence() {
        let a = MemDevice::new(BlockSize::kb4(), 4);
        let b = MemDevice::new(BlockSize::kb4(), 4);
        assert!(verify_consistent(&a, &b).unwrap());
        a.write_block(Lba(2), &vec![1u8; 4096]).unwrap();
        assert!(!verify_consistent(&a, &b).unwrap());
        let c = MemDevice::new(BlockSize::kb4(), 8);
        assert!(!verify_consistent(&a, &c).unwrap());
    }
}
