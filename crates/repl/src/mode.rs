//! Replication mode selector.

use crate::{CompressedReplicator, PrinsReplicator, Replicator, TraditionalReplicator};

/// Which replication technique a node runs — the x-axis of every
/// comparison in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReplicationMode {
    /// Replicate every changed block in full.
    Traditional,
    /// Replicate every changed block, compressed (zlib-class baseline).
    Compressed,
    /// Replicate the encoded parity of the change (the paper's
    /// contribution).
    Prins,
    /// PRINS with additional LZSS over the encoded parity (ablation).
    PrinsCompressed,
}

impl ReplicationMode {
    /// All modes, in the order the paper's figures present them.
    pub const ALL: [ReplicationMode; 4] = [
        ReplicationMode::Traditional,
        ReplicationMode::Compressed,
        ReplicationMode::Prins,
        ReplicationMode::PrinsCompressed,
    ];

    /// The three modes the paper's figures compare.
    pub const PAPER: [ReplicationMode; 3] = [
        ReplicationMode::Traditional,
        ReplicationMode::Compressed,
        ReplicationMode::Prins,
    ];

    /// Instantiates the corresponding replicator.
    pub fn replicator(self) -> Box<dyn Replicator> {
        match self {
            ReplicationMode::Traditional => Box::new(TraditionalReplicator),
            ReplicationMode::Compressed => Box::new(CompressedReplicator::default()),
            ReplicationMode::Prins => Box::new(PrinsReplicator::new()),
            ReplicationMode::PrinsCompressed => {
                Box::new(PrinsReplicator::with_parity_compression())
            }
        }
    }
}

impl std::fmt::Display for ReplicationMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ReplicationMode::Traditional => "traditional",
            ReplicationMode::Compressed => "compressed",
            ReplicationMode::Prins => "prins",
            ReplicationMode::PrinsCompressed => "prins+lzss",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prins_block::Lba;

    #[test]
    fn factory_names_match_display() {
        for mode in ReplicationMode::ALL {
            assert_eq!(mode.replicator().name(), mode.to_string());
        }
    }

    #[test]
    fn factory_produces_working_replicators() {
        let old = vec![0u8; 4096];
        let new = vec![1u8; 4096];
        for mode in ReplicationMode::ALL {
            let payload = mode.replicator().encode_write(Lba(0), &old, &new);
            assert!(!payload.is_empty(), "{mode}");
        }
    }
}
