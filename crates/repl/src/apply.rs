//! Replica-side payload application.

use prins_block::{BlockDevice, Lba};
use prins_compress::{Codec, Lzss};
use prins_parity::SparseCodec;

use crate::{BatchFrame, Payload, PayloadBody, ReplError};

/// Applies replication payloads to a replica's local device.
///
/// For PRINS payloads this performs the paper's backward parity
/// computation: read `A_old` at the payload's LBA, XOR in the decoded
/// parity extents, and store the result in place — "the data block is
/// recomputed back at the replica storage site upon receiving the
/// parity".
pub struct ReplicaApplier<'d, D: ?Sized> {
    device: &'d D,
    sparse: SparseCodec,
    lzss: Lzss,
    applied: u64,
}

impl<'d, D: BlockDevice + ?Sized> ReplicaApplier<'d, D> {
    /// Creates an applier bound to the replica's device.
    pub fn new(device: &'d D) -> Self {
        Self {
            device,
            sparse: SparseCodec::default(),
            lzss: Lzss::default(),
            applied: 0,
        }
    }

    /// Number of write payloads applied so far (sync markers excluded).
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Decodes and applies one message — a bare payload or a
    /// [`BatchFrame`] (whose inner payloads are applied in order).
    /// Returns `true` for data payloads and `false` for the end-of-sync
    /// marker (an empty batch also returns `false`).
    ///
    /// A batch is *not* atomic: a malformed or rejected inner payload
    /// aborts the batch with earlier payloads already applied — exactly
    /// the state a reconnecting primary reconciles anyway.
    ///
    /// # Errors
    ///
    /// * [`ReplError::Malformed`] / [`ReplError::Parity`] /
    ///   [`ReplError::Compress`] on undecodable payloads,
    /// * [`ReplError::Block`] if the local device rejects the write.
    pub fn apply(&mut self, payload_bytes: &[u8]) -> Result<bool, ReplError> {
        if BatchFrame::is_batch(payload_bytes) {
            let frame = BatchFrame::from_bytes(payload_bytes)?;
            let mut any_data = false;
            for inner in &frame.payloads {
                any_data |= self.apply(inner)?;
            }
            return Ok(any_data);
        }
        let payload = Payload::from_bytes(payload_bytes)?;
        let bs = self.device.geometry().block_size().bytes();
        match payload.body {
            PayloadBody::Full(data) => {
                self.device.write_block(payload.lba, &data)?;
            }
            PayloadBody::Compressed { block_len, data } => {
                if block_len != bs {
                    return Err(ReplError::Malformed(format!(
                        "compressed payload block_len {block_len} != device block size {bs}"
                    )));
                }
                let block = self.lzss.decompress(&data, block_len)?;
                self.device.write_block(payload.lba, &block)?;
            }
            PayloadBody::Parity(data) => {
                self.apply_parity(payload.lba, &data)?;
            }
            PayloadBody::ParityCompressed { sparse_len, data } => {
                let sparse = self.lzss.decompress(&data, sparse_len)?;
                self.apply_parity(payload.lba, &sparse)?;
            }
            PayloadBody::SyncMarker => return Ok(false),
        }
        self.applied += 1;
        Ok(true)
    }

    fn apply_parity(&self, lba: Lba, sparse_bytes: &[u8]) -> Result<(), ReplError> {
        let bs = self.device.geometry().block_size().bytes();
        let parity = self.sparse.decode(sparse_bytes, bs)?;
        // Backward computation: A_new = P' ^ A_old, touching only the
        // changed extents.
        let mut block = self.device.read_block_vec(lba)?;
        parity.apply_to(&mut block);
        self.device.write_block(lba, &block)?;
        Ok(())
    }
}

impl<D: ?Sized> std::fmt::Debug for ReplicaApplier<'_, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaApplier")
            .field("applied", &self.applied)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompressedReplicator, PrinsReplicator, Replicator, TraditionalReplicator};
    use prins_block::{BlockSize, MemDevice};
    use rand::{RngExt, SeedableRng};

    #[allow(clippy::type_complexity)]
    fn scenario() -> (MemDevice, Vec<(Lba, Vec<u8>, Vec<u8>)>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let replica = MemDevice::new(BlockSize::kb4(), 16);
        let mut writes = Vec::new();
        for _ in 0..40 {
            let lba = Lba(rng.random_range(0..16));
            let old = replica.read_block_vec(lba).unwrap();
            let mut new = old.clone();
            let start = rng.random_range(0..4000);
            let len = rng.random_range(1..96);
            for b in &mut new[start..start + len] {
                *b = rng.random();
            }
            writes.push((lba, old, new));
            // Track what the replica *will* hold after each apply so the
            // next old image is correct.
            replica.write_block(lba, &writes.last().unwrap().2).unwrap();
        }
        // Reset replica to zeros; the writes carry the evolution.
        let fresh = MemDevice::new(BlockSize::kb4(), 16);
        (fresh, writes)
    }

    fn replay(replicator: &dyn Replicator) {
        let (replica, writes) = scenario();
        let mut applier = ReplicaApplier::new(&replica);
        for (lba, old, new) in &writes {
            let payload = replicator.encode_write(*lba, old, new);
            assert!(applier.apply(&payload).unwrap());
            assert_eq!(&replica.read_block_vec(*lba).unwrap(), new);
        }
        assert_eq!(applier.applied(), writes.len() as u64);
    }

    #[test]
    fn traditional_payloads_apply() {
        replay(&TraditionalReplicator);
    }

    #[test]
    fn compressed_payloads_apply() {
        replay(&CompressedReplicator::default());
    }

    #[test]
    fn prins_payloads_apply() {
        replay(&PrinsReplicator::new());
    }

    #[test]
    fn prins_compressed_payloads_apply() {
        replay(&PrinsReplicator::with_parity_compression());
    }

    #[test]
    fn sync_marker_returns_false() {
        let replica = MemDevice::new(BlockSize::kb4(), 4);
        let mut applier = ReplicaApplier::new(&replica);
        let marker = Payload {
            lba: Lba(0),
            body: PayloadBody::SyncMarker,
        };
        assert!(!applier.apply(&marker.to_bytes()).unwrap());
        assert_eq!(applier.applied(), 0);
    }

    #[test]
    fn wrong_block_size_parity_is_rejected() {
        let replica = MemDevice::new(BlockSize::kb4(), 4);
        let mut applier = ReplicaApplier::new(&replica);
        // Parity encoded for an 8 KB block cannot apply to a 4 KB device.
        let old = [0u8; 8192];
        let mut new = old;
        new[100..132].fill(1); // sparse change → parity payload
        let payload = PrinsReplicator::new().encode_write(Lba(0), &old, &new);
        assert!(matches!(applier.apply(&payload), Err(ReplError::Parity(_))));
    }

    #[test]
    fn out_of_range_lba_is_rejected() {
        let replica = MemDevice::new(BlockSize::kb4(), 4);
        let mut applier = ReplicaApplier::new(&replica);
        let payload = TraditionalReplicator.encode_write(Lba(99), &[0u8; 4096], &[1u8; 4096]);
        assert!(matches!(applier.apply(&payload), Err(ReplError::Block(_))));
    }

    #[test]
    fn garbage_payload_is_rejected() {
        let replica = MemDevice::new(BlockSize::kb4(), 4);
        let mut applier = ReplicaApplier::new(&replica);
        assert!(applier.apply(&[200, 1, 2, 3]).is_err());
    }

    #[test]
    fn batch_frame_applies_all_inner_payloads_in_order() {
        let replica = MemDevice::new(BlockSize::kb4(), 4);
        let mut applier = ReplicaApplier::new(&replica);
        let replicator = PrinsReplicator::new();
        // A chain of two writes to the same block, packed in one frame:
        // applying out of order would XOR against the wrong base.
        let a = vec![0u8; 4096];
        let mut b = a.clone();
        b[10..20].fill(7);
        let mut c = b.clone();
        c[15..40].fill(9);
        let frame = BatchFrame {
            payloads: vec![
                replicator.encode_write(Lba(2), &a, &b),
                replicator.encode_write(Lba(2), &b, &c),
                TraditionalReplicator.encode_write(Lba(0), &a, &b),
            ],
        };
        assert!(applier.apply(&frame.to_bytes()).unwrap());
        assert_eq!(applier.applied(), 3);
        assert_eq!(replica.read_block_vec(Lba(2)).unwrap(), c);
        assert_eq!(replica.read_block_vec(Lba(0)).unwrap(), b);
    }

    #[test]
    fn empty_batch_counts_as_no_data() {
        let replica = MemDevice::new(BlockSize::kb4(), 4);
        let mut applier = ReplicaApplier::new(&replica);
        assert!(!applier.apply(&BatchFrame::default().to_bytes()).unwrap());
        assert_eq!(applier.applied(), 0);
    }

    #[test]
    fn bad_inner_payload_aborts_batch_after_earlier_applies() {
        let replica = MemDevice::new(BlockSize::kb4(), 4);
        let mut applier = ReplicaApplier::new(&replica);
        let good = TraditionalReplicator.encode_write(Lba(1), &[0u8; 4096], &[3u8; 4096]);
        let frame = BatchFrame {
            payloads: vec![good, vec![200, 1, 2]],
        };
        assert!(applier.apply(&frame.to_bytes()).is_err());
        // The first payload landed before the abort.
        assert_eq!(replica.read_block_vec(Lba(1)).unwrap(), vec![3u8; 4096]);
    }
}
