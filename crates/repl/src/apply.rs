//! Replica-side payload application.

use std::collections::HashMap;

use prins_block::{crc32c, BlockDevice, Lba};
use prins_compress::{Codec, Lzss};
use prins_parity::{ErasureCodec, SparseCodec, XorCodec};

use crate::{
    decode_digest_request, decode_read_request, decode_strip_request, is_digest_request,
    is_read_request, is_strip_request, open_frame, BatchFrame, Payload, PayloadBody, ReplError,
    SEAL_TAG,
};

/// What [`ReplicaApplier::handle`] did with an incoming frame, telling
/// the transport loop which response to send.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Applied {
    /// A replication frame was applied (`true`) or was a sync marker
    /// (`false`); answer with an ACK.
    Data(bool),
    /// A scrub digest probe; answer with a digest ack carrying this
    /// CRC32C of the probed block as read from the replica's disk.
    Digest(u32),
    /// A rebuild strip read; answer with a strip ack carrying this
    /// zero-run-encoded image of the requested block.
    Strip(Vec<u8>),
    /// An offloaded block read; answer with a read ack carrying this
    /// zero-run-encoded image of the requested block.
    Read(Vec<u8>),
}

/// Applies replication payloads to a replica's local device.
///
/// For PRINS payloads this performs the paper's backward parity
/// computation: read `A_old` at the payload's LBA, XOR in the decoded
/// parity extents, and store the result in place — "the data block is
/// recomputed back at the replica storage site upon receiving the
/// parity".
///
/// # Integrity
///
/// Sealed frames (see [`crate::seal_frame`]) are opened transparently:
/// the CRC32C is verified *before* anything is parsed or written, and
/// the frame's epoch is remembered (see [`last_epoch`]) so the
/// transport loop can echo it in acknowledgements.
///
/// The applier also keeps a per-LBA checksum table of every block it
/// has written. Before a parity frame XORs against `A_old`, the table
/// entry is checked against the bytes read back from disk — if the
/// replica's media corrupted the block since the last write, the apply
/// fails with [`ReplError::ChecksumMismatch`] instead of silently
/// fabricating a state the primary never held.
///
/// [`last_epoch`]: Self::last_epoch
pub struct ReplicaApplier<D> {
    device: D,
    sparse: SparseCodec,
    lzss: Lzss,
    codec: Box<dyn ErasureCodec>,
    applied: u64,
    last_epoch: u64,
    require_sealed: bool,
    checksums: HashMap<u64, u32>,
    /// Recycled block buffer for the backward computation — one device
    /// block, reused across applies so the steady-state parity path
    /// performs no heap allocation for the base image.
    scratch: Vec<u8>,
}

impl<D: BlockDevice> ReplicaApplier<D> {
    /// Creates an applier owning a handle to the replica's device —
    /// a plain reference, an `Arc`, or the device itself all work.
    ///
    /// Deltas apply through the mirroring [`XorCodec`] by default; see
    /// [`with_codec`](Self::with_codec) for erasure-coded strips.
    pub fn new(device: D) -> Self {
        Self {
            device,
            sparse: SparseCodec::default(),
            lzss: Lzss::default(),
            codec: Box::new(XorCodec::mirror()),
            applied: 0,
            last_epoch: 0,
            require_sealed: false,
            checksums: HashMap::new(),
            scratch: Vec::new(),
        }
    }

    /// Replaces the erasure codec that strip deltas apply through.
    ///
    /// A replica holding a Reed–Solomon parity strip needs the full
    /// GF(256) update `strip ^= c · Δ`; the XOR default only accepts
    /// coefficients 0 and 1.
    pub fn with_codec(mut self, codec: Box<dyn ErasureCodec>) -> Self {
        self.codec = codec;
        self
    }

    /// Requires every top-level frame to arrive sealed.
    ///
    /// Without this, a bit flip that happens to hit the seal tag byte
    /// would make the frame look unsealed and skip verification; a
    /// strict applier rejects such frames outright. Turn it on wherever
    /// the sender is known to seal (the pipelined engine lanes and the
    /// cluster always do).
    pub fn require_sealed(mut self, on: bool) -> Self {
        self.require_sealed = on;
        self
    }

    /// Number of write payloads applied so far (sync markers excluded).
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Epoch of the most recent sealed frame opened (0 before any).
    ///
    /// Acknowledgement loops echo this so the primary can discard acks
    /// that predate a rejoin.
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// CRC32C of the block at `lba` as read back from the device right
    /// now — the scrubber's ground truth, deliberately *not* served
    /// from the checksum table so media corruption is visible.
    ///
    /// # Errors
    ///
    /// Propagates read failures from the device.
    pub fn digest(&self, lba: Lba) -> Result<u32, ReplError> {
        Ok(crc32c(&self.device.read_block_vec(lba)?))
    }

    /// Decodes and applies one message — a bare payload or a
    /// [`BatchFrame`] (whose inner payloads are applied in order).
    /// Returns `true` for data payloads and `false` for the end-of-sync
    /// marker (an empty batch also returns `false`).
    ///
    /// A batch is *not* atomic: a malformed or rejected inner payload
    /// aborts the batch with earlier payloads already applied — exactly
    /// the state a reconnecting primary reconciles anyway.
    ///
    /// # Errors
    ///
    /// * [`ReplError::Malformed`] / [`ReplError::Parity`] /
    ///   [`ReplError::Compress`] on undecodable payloads,
    /// * [`ReplError::Block`] if the local device rejects the write.
    pub fn apply(&mut self, payload_bytes: &[u8]) -> Result<bool, ReplError> {
        match self.handle(payload_bytes)? {
            Applied::Data(any) => Ok(any),
            Applied::Digest(_) | Applied::Strip(_) | Applied::Read(_) => Err(ReplError::Malformed(
                "read request on the apply-only path".into(),
            )),
        }
    }

    /// Dispatches one incoming frame — sealed or bare, replication
    /// payload or scrub digest probe — and says how to respond.
    ///
    /// This is what transport loops should call; [`apply`](Self::apply)
    /// is the data-only subset.
    ///
    /// # Errors
    ///
    /// As [`apply`](Self::apply), plus [`ReplError::ChecksumMismatch`]
    /// for frames that fail their seal check (or arrive unsealed while
    /// [`require_sealed`](Self::require_sealed) is on) — answer those
    /// with `NAK_CORRUPT` so the sender retransmits.
    pub fn handle(&mut self, frame: &[u8]) -> Result<Applied, ReplError> {
        if frame.first() == Some(&SEAL_TAG) {
            let (epoch, inner) = open_frame(frame)?;
            self.last_epoch = epoch;
            if is_digest_request(inner) {
                let lba = decode_digest_request(inner)?;
                return Ok(Applied::Digest(self.digest(lba)?));
            }
            if is_strip_request(inner) {
                let lba = decode_strip_request(inner)?;
                return Ok(Applied::Strip(self.strip_image(lba)?));
            }
            if is_read_request(inner) {
                let lba = decode_read_request(inner)?;
                return Ok(Applied::Read(self.strip_image(lba)?));
            }
            // The seal's CRC already vouched for the inner frame; apply
            // it without requiring a second (nested) seal.
            return self.apply_inner(inner).map(Applied::Data);
        }
        if is_digest_request(frame) {
            let lba = decode_digest_request(frame)?;
            return Ok(Applied::Digest(self.digest(lba)?));
        }
        if is_strip_request(frame) {
            let lba = decode_strip_request(frame)?;
            return Ok(Applied::Strip(self.strip_image(lba)?));
        }
        if is_read_request(frame) {
            let lba = decode_read_request(frame)?;
            return Ok(Applied::Read(self.strip_image(lba)?));
        }
        if self.require_sealed {
            return Err(ReplError::ChecksumMismatch {
                expected: 0,
                got: crc32c(frame),
            });
        }
        self.apply_inner(frame).map(Applied::Data)
    }

    fn apply_inner(&mut self, payload_bytes: &[u8]) -> Result<bool, ReplError> {
        if BatchFrame::is_batch(payload_bytes) {
            let frame = BatchFrame::from_bytes(payload_bytes)?;
            let mut any_data = false;
            for inner in &frame.payloads {
                any_data |= self.apply_inner(inner)?;
            }
            return Ok(any_data);
        }
        let payload = Payload::from_bytes(payload_bytes)?;
        let bs = self.device.geometry().block_size().bytes();
        match payload.body {
            PayloadBody::Full(data) => {
                self.write_checked(payload.lba, &data)?;
            }
            PayloadBody::Compressed { block_len, data } => {
                if block_len != bs {
                    return Err(ReplError::Malformed(format!(
                        "compressed payload block_len {block_len} != device block size {bs}"
                    )));
                }
                let block = self.lzss.decompress(&data, block_len)?;
                self.write_checked(payload.lba, &block)?;
            }
            PayloadBody::Parity(data) => {
                self.apply_parity(payload.lba, &data)?;
            }
            PayloadBody::ParityCompressed { sparse_len, data } => {
                let sparse = self.lzss.decompress(&data, sparse_len)?;
                self.apply_parity(payload.lba, &sparse)?;
            }
            PayloadBody::StripDelta { coeff, data } => {
                self.apply_strip_delta(payload.lba, coeff, &data)?;
            }
            PayloadBody::SyncMarker => return Ok(false),
        }
        self.applied += 1;
        Ok(true)
    }

    fn write_checked(&mut self, lba: Lba, block: &[u8]) -> Result<(), ReplError> {
        self.device.write_block(lba, block)?;
        self.checksums.insert(lba.index(), crc32c(block));
        Ok(())
    }

    fn apply_parity(&mut self, lba: Lba, sparse_bytes: &[u8]) -> Result<(), ReplError> {
        // PRINS mirroring is the coefficient-1 strip update: the data
        // strip of every erasure code is systematic, so the two paths
        // share one implementation through the codec seam.
        self.apply_strip_delta(lba, 1, sparse_bytes)
    }

    fn apply_strip_delta(
        &mut self,
        lba: Lba,
        coeff: u8,
        sparse_bytes: &[u8],
    ) -> Result<(), ReplError> {
        let bs = self.device.geometry().block_size().bytes();
        let delta = self.sparse.decode(sparse_bytes, bs)?;
        // Backward computation: A_new = A_old ^ c·Δ, touching only the
        // changed extents. A_old must be exactly what was last written
        // here — verify it against the checksum table first, because
        // updating a corrupted base fabricates a block the primary
        // never held and no later check could catch.
        //
        // The base image lands in the recycled scratch buffer (taken
        // out of `self` for the duration so the codec can borrow it
        // mutably) — no allocation after the first apply.
        let mut block = std::mem::take(&mut self.scratch);
        block.resize(bs, 0);
        let result = (|| {
            self.device.read_block(lba, &mut block)?;
            if let Some(&expected) = self.checksums.get(&lba.index()) {
                let got = crc32c(&block);
                if got != expected {
                    return Err(ReplError::ChecksumMismatch { expected, got });
                }
            }
            for seg in delta.segments() {
                self.codec
                    .apply_delta(&mut block[seg.offset..seg.end()], coeff, &seg.data)
                    .map_err(|e| ReplError::Malformed(format!("strip delta: {e}")))?;
            }
            self.write_checked(lba, &block)
        })();
        self.scratch = block;
        result
    }

    /// The zero-run-encoded image of the block at `lba` as read from
    /// disk — a rebuild contribution or an offloaded-read answer.
    /// Checked against the checksum table so neither a rebuild nor a
    /// served read ever ingests silently corrupted media.
    fn strip_image(&mut self, lba: Lba) -> Result<Vec<u8>, ReplError> {
        let block = self.device.read_block_vec(lba)?;
        if let Some(&expected) = self.checksums.get(&lba.index()) {
            let got = crc32c(&block);
            if got != expected {
                return Err(ReplError::ChecksumMismatch { expected, got });
            }
        }
        Ok(self.sparse.encode(&block).to_bytes())
    }
}

impl<D> std::fmt::Debug for ReplicaApplier<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaApplier")
            .field("applied", &self.applied)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompressedReplicator, PrinsReplicator, Replicator, TraditionalReplicator};
    use prins_block::{BlockSize, MemDevice};
    use rand::{RngExt, SeedableRng};

    #[allow(clippy::type_complexity)]
    fn scenario() -> (MemDevice, Vec<(Lba, Vec<u8>, Vec<u8>)>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let replica = MemDevice::new(BlockSize::kb4(), 16);
        let mut writes = Vec::new();
        for _ in 0..40 {
            let lba = Lba(rng.random_range(0..16));
            let old = replica.read_block_vec(lba).unwrap();
            let mut new = old.clone();
            let start = rng.random_range(0..4000);
            let len = rng.random_range(1..96);
            for b in &mut new[start..start + len] {
                *b = rng.random();
            }
            writes.push((lba, old, new));
            // Track what the replica *will* hold after each apply so the
            // next old image is correct.
            replica.write_block(lba, &writes.last().unwrap().2).unwrap();
        }
        // Reset replica to zeros; the writes carry the evolution.
        let fresh = MemDevice::new(BlockSize::kb4(), 16);
        (fresh, writes)
    }

    fn replay(replicator: &dyn Replicator) {
        let (replica, writes) = scenario();
        let mut applier = ReplicaApplier::new(&replica);
        for (lba, old, new) in &writes {
            let payload = replicator.encode_write(*lba, old, new);
            assert!(applier.apply(&payload).unwrap());
            assert_eq!(&replica.read_block_vec(*lba).unwrap(), new);
        }
        assert_eq!(applier.applied(), writes.len() as u64);
    }

    #[test]
    fn traditional_payloads_apply() {
        replay(&TraditionalReplicator);
    }

    #[test]
    fn compressed_payloads_apply() {
        replay(&CompressedReplicator::default());
    }

    #[test]
    fn prins_payloads_apply() {
        replay(&PrinsReplicator::new());
    }

    #[test]
    fn prins_compressed_payloads_apply() {
        replay(&PrinsReplicator::with_parity_compression());
    }

    #[test]
    fn sync_marker_returns_false() {
        let replica = MemDevice::new(BlockSize::kb4(), 4);
        let mut applier = ReplicaApplier::new(&replica);
        let marker = Payload {
            lba: Lba(0),
            body: PayloadBody::SyncMarker,
        };
        assert!(!applier.apply(&marker.to_bytes()).unwrap());
        assert_eq!(applier.applied(), 0);
    }

    #[test]
    fn wrong_block_size_parity_is_rejected() {
        let replica = MemDevice::new(BlockSize::kb4(), 4);
        let mut applier = ReplicaApplier::new(&replica);
        // Parity encoded for an 8 KB block cannot apply to a 4 KB device.
        let old = [0u8; 8192];
        let mut new = old;
        new[100..132].fill(1); // sparse change → parity payload
        let payload = PrinsReplicator::new().encode_write(Lba(0), &old, &new);
        assert!(matches!(applier.apply(&payload), Err(ReplError::Parity(_))));
    }

    #[test]
    fn out_of_range_lba_is_rejected() {
        let replica = MemDevice::new(BlockSize::kb4(), 4);
        let mut applier = ReplicaApplier::new(&replica);
        let payload = TraditionalReplicator.encode_write(Lba(99), &[0u8; 4096], &[1u8; 4096]);
        assert!(matches!(applier.apply(&payload), Err(ReplError::Block(_))));
    }

    #[test]
    fn garbage_payload_is_rejected() {
        let replica = MemDevice::new(BlockSize::kb4(), 4);
        let mut applier = ReplicaApplier::new(&replica);
        assert!(applier.apply(&[200, 1, 2, 3]).is_err());
    }

    #[test]
    fn batch_frame_applies_all_inner_payloads_in_order() {
        let replica = MemDevice::new(BlockSize::kb4(), 4);
        let mut applier = ReplicaApplier::new(&replica);
        let replicator = PrinsReplicator::new();
        // A chain of two writes to the same block, packed in one frame:
        // applying out of order would XOR against the wrong base.
        let a = vec![0u8; 4096];
        let mut b = a.clone();
        b[10..20].fill(7);
        let mut c = b.clone();
        c[15..40].fill(9);
        let frame = BatchFrame {
            payloads: vec![
                replicator.encode_write(Lba(2), &a, &b),
                replicator.encode_write(Lba(2), &b, &c),
                TraditionalReplicator.encode_write(Lba(0), &a, &b),
            ],
        };
        assert!(applier.apply(&frame.to_bytes()).unwrap());
        assert_eq!(applier.applied(), 3);
        assert_eq!(replica.read_block_vec(Lba(2)).unwrap(), c);
        assert_eq!(replica.read_block_vec(Lba(0)).unwrap(), b);
    }

    #[test]
    fn empty_batch_counts_as_no_data() {
        let replica = MemDevice::new(BlockSize::kb4(), 4);
        let mut applier = ReplicaApplier::new(&replica);
        assert!(!applier.apply(&BatchFrame::default().to_bytes()).unwrap());
        assert_eq!(applier.applied(), 0);
    }

    #[test]
    fn sealed_frames_open_transparently_and_track_epoch() {
        let replica = MemDevice::new(BlockSize::kb4(), 4);
        let mut applier = ReplicaApplier::new(&replica).require_sealed(true);
        let inner = TraditionalReplicator.encode_write(Lba(1), &[0u8; 4096], &[5u8; 4096]);
        assert!(applier.apply(&crate::seal_frame(9, &inner)).unwrap());
        assert_eq!(applier.last_epoch(), 9);
        assert_eq!(replica.read_block_vec(Lba(1)).unwrap(), vec![5u8; 4096]);
        // Strict mode rejects bare frames with a checksum error (so the
        // transport loop answers NAK_CORRUPT, not a fatal NAK).
        assert!(matches!(
            applier.apply(&inner),
            Err(ReplError::ChecksumMismatch { .. })
        ));
        // A corrupted seal is rejected before anything is applied.
        let mut damaged = crate::seal_frame(10, &inner);
        let last = damaged.len() - 1;
        damaged[last] ^= 0x04;
        assert!(applier.apply(&damaged).is_err());
        assert_eq!(applier.last_epoch(), 9);
        assert_eq!(applier.applied(), 1);
    }

    #[test]
    fn parity_against_corrupted_base_is_detected() {
        let replica = MemDevice::new(BlockSize::kb4(), 4);
        let mut applier = ReplicaApplier::new(&replica);
        let replicator = PrinsReplicator::new();
        let a = vec![0u8; 4096];
        let mut b = a.clone();
        b[100..140].fill(3);
        assert!(applier
            .apply(&replicator.encode_write(Lba(2), &a, &b))
            .unwrap());
        // Simulate media corruption behind the applier's back.
        let mut damaged = b.clone();
        damaged[0] ^= 0x80;
        replica.write_block(Lba(2), &damaged).unwrap();
        let mut c = b.clone();
        c[120..160].fill(8);
        let err = applier
            .apply(&replicator.encode_write(Lba(2), &b, &c))
            .unwrap_err();
        assert!(matches!(err, ReplError::ChecksumMismatch { .. }), "{err}");
        // The corrupted base was never XORed into a fabricated state.
        assert_eq!(replica.read_block_vec(Lba(2)).unwrap(), damaged);
    }

    #[test]
    fn digest_reads_the_disk_not_the_table() {
        let replica = MemDevice::new(BlockSize::kb4(), 4);
        let mut applier = ReplicaApplier::new(&replica);
        let block = vec![7u8; 4096];
        applier
            .apply(&TraditionalReplicator.encode_write(Lba(0), &[0u8; 4096], &block))
            .unwrap();
        assert_eq!(applier.digest(Lba(0)).unwrap(), prins_block::crc32c(&block));
        let mut damaged = block.clone();
        damaged[9] ^= 1;
        replica.write_block(Lba(0), &damaged).unwrap();
        assert_eq!(
            applier.digest(Lba(0)).unwrap(),
            prins_block::crc32c(&damaged)
        );
    }

    #[test]
    fn strip_delta_applies_through_the_codec() {
        use prins_parity::SparseCodec;
        // A replica holding RS parity strip 0 of a k=4,m=2 group: its
        // update for a data-strip delta Δ on column j is c_{0,j}·Δ.
        let rs = prins_ec::ReedSolomon::k4m2();
        let coeff = rs.coefficient(0, 2);
        assert!(coeff > 1, "Cauchy coefficients exercise real GF math");
        let replica = MemDevice::new(BlockSize::kb4(), 4);
        let mut applier = ReplicaApplier::new(&replica).with_codec(Box::new(rs));

        let mut delta = vec![0u8; 4096];
        for (i, b) in delta[700..900].iter_mut().enumerate() {
            *b = (i * 13 % 251) as u8 + 1;
        }
        let sparse = SparseCodec::default().encode(&delta).to_bytes();
        let payload = Payload {
            lba: Lba(1),
            body: PayloadBody::StripDelta {
                coeff,
                data: sparse,
            },
        };
        assert!(applier.apply(&payload.to_bytes()).unwrap());
        let got = replica.read_block_vec(Lba(1)).unwrap();
        let want: Vec<u8> = delta.iter().map(|&d| prins_ec::gf::mul(coeff, d)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn xor_codec_rejects_gf_coefficients() {
        let replica = MemDevice::new(BlockSize::kb4(), 4);
        let mut applier = ReplicaApplier::new(&replica);
        let sparse = prins_parity::SparseCodec::default()
            .encode(&[1u8; 4096])
            .to_bytes();
        let payload = Payload {
            lba: Lba(0),
            body: PayloadBody::StripDelta {
                coeff: 3,
                data: sparse,
            },
        };
        assert!(matches!(
            applier.apply(&payload.to_bytes()),
            Err(ReplError::Malformed(_))
        ));
    }

    #[test]
    fn strip_request_returns_the_disk_image() {
        let replica = MemDevice::new(BlockSize::kb4(), 4);
        let mut applier = ReplicaApplier::new(&replica);
        let mut block = vec![0u8; 4096];
        block[40..80].fill(0x5a);
        applier
            .apply(&TraditionalReplicator.encode_write(Lba(2), &[0u8; 4096], &block))
            .unwrap();
        let req = crate::encode_strip_request(Lba(2));
        // Both sealed and bare requests answer with the sparse image.
        for frame in [crate::seal_frame(4, &req), req] {
            match applier.handle(&frame).unwrap() {
                Applied::Strip(sparse) => {
                    let dense = applier.sparse.decode(&sparse, 4096).unwrap().to_dense(4096);
                    assert_eq!(dense, block);
                    assert!(sparse.len() < 200, "zero runs are elided");
                }
                other => panic!("expected strip image, got {other:?}"),
            }
        }
        // A corrupted base is refused, not served.
        let mut damaged = block.clone();
        damaged[50] ^= 0x10;
        replica.write_block(Lba(2), &damaged).unwrap();
        assert!(matches!(
            applier.handle(&crate::encode_strip_request(Lba(2))),
            Err(ReplError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn read_request_returns_the_disk_image_or_refuses_corruption() {
        let replica = MemDevice::new(BlockSize::kb4(), 4);
        let mut applier = ReplicaApplier::new(&replica);
        let mut block = vec![0u8; 4096];
        block[128..192].fill(0xa7);
        applier
            .apply(&TraditionalReplicator.encode_write(Lba(1), &[0u8; 4096], &block))
            .unwrap();
        let req = crate::encode_read_request(Lba(1));
        for frame in [crate::seal_frame(3, &req), req] {
            match applier.handle(&frame).unwrap() {
                Applied::Read(sparse) => {
                    let dense = applier.sparse.decode(&sparse, 4096).unwrap().to_dense(4096);
                    assert_eq!(dense, block);
                }
                other => panic!("expected read image, got {other:?}"),
            }
        }
        assert_eq!(applier.last_epoch(), 3);
        // Media rot under the checksum table is refused, never served.
        let mut damaged = block.clone();
        damaged[130] ^= 0x02;
        replica.write_block(Lba(1), &damaged).unwrap();
        assert!(matches!(
            applier.handle(&crate::encode_read_request(Lba(1))),
            Err(ReplError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn bad_inner_payload_aborts_batch_after_earlier_applies() {
        let replica = MemDevice::new(BlockSize::kb4(), 4);
        let mut applier = ReplicaApplier::new(&replica);
        let good = TraditionalReplicator.encode_write(Lba(1), &[0u8; 4096], &[3u8; 4096]);
        let frame = BatchFrame {
            payloads: vec![good, vec![200, 1, 2]],
        };
        assert!(applier.apply(&frame.to_bytes()).is_err());
        // The first payload landed before the abort.
        assert_eq!(replica.read_block_vec(Lba(1)).unwrap(), vec![3u8; 4096]);
    }
}
