//! Block replication strategies: traditional full-block replication,
//! full-block with compression, and PRINS parity replication.
//!
//! This crate is the head-to-head comparison at the center of the paper's
//! evaluation. All three techniques observe the same write stream
//! `(lba, old, new)` and produce a wire payload; they differ only in what
//! they put on the network:
//!
//! | strategy | wire payload per write |
//! |---|---|
//! | [`ReplicationMode::Traditional`] | the full new block |
//! | [`ReplicationMode::Compressed`] | the full new block, LZSS-compressed (the paper's zlib baseline) |
//! | [`ReplicationMode::Prins`] | the zero-run-encoded parity `P' = new ⊕ old` |
//! | [`ReplicationMode::PrinsCompressed`] | the encoded parity, LZSS-compressed on top (ablation) |
//!
//! The replica side ([`ReplicaApplier`]) decodes the payload and restores
//! the block — for PRINS via the backward parity computation
//! `A_new = P' ⊕ A_old` against the replica's own copy.
//!
//! [`ReplicationGroup`] wires a primary to any number of replica
//! transports with acknowledged delivery (the paper's closed-loop
//! assumption: a node does not issue the next write until the previous
//! one is replicated).
//!
//! # Example
//!
//! ```
//! use prins_repl::{ReplicationMode, Replicator, ReplicaApplier};
//! use prins_block::{BlockDevice, BlockSize, Lba, MemDevice};
//!
//! # fn main() -> Result<(), prins_repl::ReplError> {
//! let replicator = ReplicationMode::Prins.replicator();
//!
//! // Primary side: a write changes 64 bytes of an 8 KB block.
//! let old = vec![0u8; 8192];
//! let mut new = old.clone();
//! new[100..164].fill(7);
//! let payload = replicator.encode_write(Lba(3), &old, &new);
//! assert!(payload.len() < 100); // vs 8192 for traditional replication
//!
//! // Replica side: holds the old image, recovers the new one.
//! let replica = MemDevice::new(BlockSize::kb8(), 8);
//! replica.write_block(Lba(3), &old)?;
//! ReplicaApplier::new(&replica).apply(&payload)?;
//! assert_eq!(replica.read_block_vec(Lba(3))?, new);
//! # Ok(())
//! # }
//! ```

mod apply;
mod error;
mod group;
mod mode;
mod payload;
mod range;
mod seal;
mod strategy;

pub use apply::{Applied, ReplicaApplier};
pub use error::ReplError;
pub use group::{
    run_replica, run_replica_applier, verify_consistent, AckPolicy, ReplicationGroup, ACK, NAK,
};
pub use mode::ReplicationMode;
pub use payload::{BatchFrame, Payload, PayloadBody, BATCH_TAG, MAX_WIRE_LEN, STRIP_DELTA_TAG};
pub use range::SeqRange;
pub use seal::{
    decode_ack, decode_digest_request, decode_read_ack, decode_read_request, decode_strip_ack,
    decode_strip_request, encode_ack, encode_digest_ack, encode_digest_request, encode_read_ack,
    encode_read_request, encode_strip_ack, encode_strip_request, is_digest_request,
    is_read_request, is_sealed, is_strip_request, open_frame, seal_batch_frame_into, seal_begin,
    seal_frame, seal_frame_into, AckFrame, SealWriter, DIGEST_ACK, DIGEST_REQ_TAG, NAK_CORRUPT,
    READ_ACK, READ_REQ_TAG, SEAL_TAG, STRIP_ACK, STRIP_REQ_TAG,
};
pub use strategy::{CompressedReplicator, PrinsReplicator, Replicator, TraditionalReplicator};
