//! Contiguous sequence-number runs, for correlating one wire frame
//! (or one acknowledgement) with the pipeline writes it carries.
//!
//! The engine's reorder buffer releases writes to every sender lane in
//! strict sequence order and each lane's queue is FIFO, so the writes a
//! batch frame carries are always a contiguous run of sequence numbers.
//! A [`SeqRange`] captures that run in two words — the in-flight table
//! and the tracing layer correlate acks back to individual writes
//! without keeping a `Vec<u64>` per frame.

/// A contiguous, possibly empty run of sequence numbers
/// `[first, first + len)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeqRange {
    first: u64,
    len: u32,
}

impl SeqRange {
    /// The empty range.
    #[must_use]
    pub fn empty() -> Self {
        Self { first: 0, len: 0 }
    }

    /// A range holding exactly `seq`.
    #[must_use]
    pub fn single(seq: u64) -> Self {
        Self { first: seq, len: 1 }
    }

    /// Appends `seq`: starts the run when empty, extends it when `seq`
    /// is the next number, returns `false` (unchanged) otherwise.
    pub fn push(&mut self, seq: u64) -> bool {
        if self.len == 0 {
            self.first = seq;
            self.len = 1;
            true
        } else if seq == self.first + u64::from(self.len) && self.len < u32::MAX {
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// First sequence number, or `None` when empty.
    #[must_use]
    pub fn first(&self) -> Option<u64> {
        (self.len > 0).then_some(self.first)
    }

    /// Last sequence number, or `None` when empty.
    #[must_use]
    pub fn last(&self) -> Option<u64> {
        (self.len > 0).then(|| self.first + u64::from(self.len) - 1)
    }

    /// Sequence numbers in the run.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the run holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when `seq` is inside the run.
    #[must_use]
    pub fn contains(&self, seq: u64) -> bool {
        self.len > 0 && seq >= self.first && seq - self.first < u64::from(self.len)
    }

    /// The run's sequence numbers in order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..u64::from(self.len)).map(move |i| self.first + i)
    }
}

impl Default for SeqRange {
    fn default() -> Self {
        Self::empty()
    }
}

impl IntoIterator for SeqRange {
    type Item = u64;
    type IntoIter = std::iter::Map<std::ops::Range<u64>, Box<dyn Fn(u64) -> u64>>;

    fn into_iter(self) -> Self::IntoIter {
        let first = self.first;
        (0..u64::from(self.len)).map(Box::new(move |i| first + i) as _)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_builds_only_contiguous_runs() {
        let mut r = SeqRange::empty();
        assert!(r.is_empty());
        assert!(r.push(10));
        assert!(r.push(11));
        assert!(r.push(12));
        assert!(!r.push(14), "gap rejected");
        assert!(!r.push(12), "duplicate rejected");
        assert_eq!(r.len(), 3);
        assert_eq!(r.first(), Some(10));
        assert_eq!(r.last(), Some(12));
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![10, 11, 12]);
    }

    #[test]
    fn single_and_contains() {
        let r = SeqRange::single(7);
        assert_eq!(r.len(), 1);
        assert!(r.contains(7));
        assert!(!r.contains(6));
        assert!(!r.contains(8));
        assert!(!SeqRange::empty().contains(0));
        assert_eq!(SeqRange::empty().first(), None);
        assert_eq!(SeqRange::empty().last(), None);
    }

    #[test]
    fn into_iter_matches_iter() {
        let mut r = SeqRange::empty();
        for seq in 3..8 {
            assert!(r.push(seq));
        }
        let by_ref: Vec<u64> = r.iter().collect();
        let by_val: Vec<u64> = r.into_iter().collect();
        assert_eq!(by_ref, by_val);
        assert_eq!(by_val, vec![3, 4, 5, 6, 7]);
    }
}
