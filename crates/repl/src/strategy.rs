//! The three replication strategies compared throughout the paper.

use prins_block::Lba;
use prins_compress::{Codec, Lzss};
use prins_parity::{ErasureCodec, SparseCodec, XorCodec};

use crate::{Payload, PayloadBody};

/// A replication strategy: turns an observed block write into a wire
/// payload.
///
/// `encode_write` is pure (no I/O), so the traffic experiments can run a
/// recorded write stream through several strategies and compare byte
/// counts directly — exactly what Figures 4–7 of the paper plot.
pub trait Replicator: Send + Sync {
    /// Encodes the write of `new` over `old` at `lba` into wire bytes.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `old.len() != new.len()`; callers
    /// always pass images of one device block.
    fn encode_write(&self, lba: Lba, old: &[u8], new: &[u8]) -> Vec<u8>;

    /// Appends the wire bytes of [`encode_write`](Self::encode_write) to
    /// `out`, byte-identically. The default delegates to `encode_write`;
    /// strategies on the zero-copy hot path override this to serialize
    /// straight into a pooled buffer without intermediate allocations.
    fn encode_write_into(&self, lba: Lba, old: &[u8], new: &[u8], out: &mut Vec<u8>) {
        out.extend_from_slice(&self.encode_write(lba, old, new));
    }

    /// Short name for reports ("traditional", "compressed", "prins", …).
    fn name(&self) -> &'static str;
}

/// Traditional replication: ship the whole new block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraditionalReplicator;

impl Replicator for TraditionalReplicator {
    fn encode_write(&self, lba: Lba, _old: &[u8], new: &[u8]) -> Vec<u8> {
        Payload {
            lba,
            body: PayloadBody::Full(new.to_vec()),
        }
        .to_bytes()
    }

    fn encode_write_into(&self, lba: Lba, _old: &[u8], new: &[u8], out: &mut Vec<u8>) {
        out.push(0); // PayloadBody::Full tag
        prins_parity::encode_varint(out, lba.index());
        out.extend_from_slice(new);
    }

    fn name(&self) -> &'static str {
        "traditional"
    }
}

/// Traditional replication with compression: ship the whole new block
/// through LZSS (the paper's zlib baseline).
#[derive(Clone, Copy, Debug, Default)]
pub struct CompressedReplicator {
    codec: Lzss,
}

impl CompressedReplicator {
    /// Uses a specific LZSS configuration.
    pub fn with_codec(codec: Lzss) -> Self {
        Self { codec }
    }
}

impl Replicator for CompressedReplicator {
    fn encode_write(&self, lba: Lba, _old: &[u8], new: &[u8]) -> Vec<u8> {
        Payload {
            lba,
            body: PayloadBody::Compressed {
                block_len: new.len(),
                data: self.codec.compress(new),
            },
        }
        .to_bytes()
    }

    fn name(&self) -> &'static str {
        "compressed"
    }
}

/// PRINS: ship the zero-run-encoded parity `P' = new ⊕ old`.
#[derive(Clone, Copy, Debug)]
pub struct PrinsReplicator {
    codec: SparseCodec,
    // Delta algebra behind the ErasureCodec seam: mirroring is the
    // m=1 code, so the same call site serves RS strip deltas.
    ec: XorCodec,
    compress_parity: bool,
    lzss: Lzss,
}

impl PrinsReplicator {
    /// Standard PRINS: sparse parity only.
    pub fn new() -> Self {
        Self {
            codec: SparseCodec::default(),
            ec: XorCodec::mirror(),
            compress_parity: false,
            lzss: Lzss::fast(),
        }
    }

    /// Ablation variant: additionally LZSS-compress the encoded parity.
    /// The paper notes PRINS "makes compression trivial"; this quantifies
    /// the residual gain.
    pub fn with_parity_compression() -> Self {
        Self {
            compress_parity: true,
            ..Self::new()
        }
    }

    /// Uses a specific sparse codec (e.g. different merge gap).
    pub fn with_codec(codec: SparseCodec) -> Self {
        Self {
            codec,
            ..Self::new()
        }
    }

    /// The sparse codec in use.
    pub fn codec(&self) -> SparseCodec {
        self.codec
    }

    /// The single decision point for the full-image fallback, shared by
    /// [`encode_write`](Replicator::encode_write) and
    /// [`encode_write_into`](Replicator::encode_write_into) so the two
    /// paths cannot drift: ship a full image when the encoded parity
    /// would be at least as large as the block. Decided from a scan-only
    /// pass ([`SparseCodec::delta_wire_info`], no allocation); the exact
    /// sparse wire length rides along so callers can reuse the scan.
    pub fn full_image_fallback(&self, old: &[u8], new: &[u8]) -> (bool, usize) {
        let (_, wire) = self.codec.delta_wire_info(old, new);
        (wire >= new.len(), wire)
    }
}

impl Default for PrinsReplicator {
    fn default() -> Self {
        Self::new()
    }
}

impl Replicator for PrinsReplicator {
    fn encode_write(&self, lba: Lba, old: &[u8], new: &[u8]) -> Vec<u8> {
        // Guard: a pathological write that changes (nearly) the whole
        // block would make the encoded parity *larger* than the block
        // (offsets + lengths on top of the data). Fall back to a full
        // image — the replica accepts both forms, so PRINS is never
        // worse than traditional replication on any single write.
        let (fallback, wire) = self.full_image_fallback(old, new);
        if fallback {
            return Payload {
                lba,
                body: PayloadBody::Full(new.to_vec()),
            }
            .to_bytes();
        }
        let parity = self.ec.delta(old, new);
        let sparse = self.codec.encode(&parity).to_bytes();
        debug_assert_eq!(sparse.len(), wire, "delta_wire_info must be exact");
        let body = if self.compress_parity {
            let compressed = self.lzss.compress(&sparse);
            if compressed.len() < sparse.len() {
                PayloadBody::ParityCompressed {
                    sparse_len: sparse.len(),
                    data: compressed,
                }
            } else {
                PayloadBody::Parity(sparse)
            }
        } else {
            PayloadBody::Parity(sparse)
        };
        Payload { lba, body }.to_bytes()
    }

    fn encode_write_into(&self, lba: Lba, old: &[u8], new: &[u8], out: &mut Vec<u8>) {
        if self.compress_parity {
            // The ablation path runs LZSS over the encoded parity; the
            // compressor allocates anyway, so the fused encoder buys
            // nothing here.
            out.extend_from_slice(&self.encode_write(lba, old, new));
            return;
        }
        // Decide sparse-vs-full from a scan-only pass, then serialize the
        // winner straight into `out` — the dense parity block and the
        // intermediate sparse buffer of `encode_write` never exist.
        let (fallback, _) = self.full_image_fallback(old, new);
        if fallback {
            out.push(0); // PayloadBody::Full tag
            prins_parity::encode_varint(out, lba.index());
            out.extend_from_slice(new);
        } else {
            out.push(2); // PayloadBody::Parity tag
            prins_parity::encode_varint(out, lba.index());
            self.codec.encode_delta_into(old, new, out);
        }
    }

    fn name(&self) -> &'static str {
        if self.compress_parity {
            "prins+lzss"
        } else {
            "prins"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    fn sample_write(change_bytes: usize) -> (Vec<u8>, Vec<u8>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut old = vec![0u8; 8192];
        rng.fill_bytes(&mut old);
        let mut new = old.clone();
        let start = rng.random_range(0..8192 - change_bytes);
        for b in &mut new[start..start + change_bytes] {
            *b = rng.random();
        }
        (old, new)
    }

    #[test]
    fn traditional_ships_full_block() {
        let (old, new) = sample_write(100);
        let payload = TraditionalReplicator.encode_write(Lba(1), &old, &new);
        assert!(payload.len() >= 8192);
        assert!(payload.len() < 8192 + 16); // small header only
    }

    #[test]
    fn prins_ships_roughly_the_changed_bytes() {
        let (old, new) = sample_write(400); // ~5% of the block
        let payload = PrinsReplicator::new().encode_write(Lba(1), &old, &new);
        assert!(payload.len() >= 400);
        assert!(payload.len() < 600, "got {}", payload.len());
    }

    #[test]
    fn prins_beats_compression_on_incompressible_blocks() {
        // Random block content (worst case for LZSS, typical for PRINS).
        let (old, new) = sample_write(800);
        let prins = PrinsReplicator::new()
            .encode_write(Lba(1), &old, &new)
            .len();
        let comp = CompressedReplicator::default()
            .encode_write(Lba(1), &old, &new)
            .len();
        assert!(
            prins * 5 < comp,
            "prins {prins} should be far below compressed {comp}"
        );
    }

    #[test]
    fn unchanged_write_costs_prins_almost_nothing() {
        let old = vec![3u8; 8192];
        let payload = PrinsReplicator::new().encode_write(Lba(9), &old, &old);
        assert!(payload.len() <= 8, "got {}", payload.len());
    }

    #[test]
    fn parity_compression_never_worse_than_plain_parity_plus_slack() {
        let (old, new) = sample_write(1000);
        let plain = PrinsReplicator::new()
            .encode_write(Lba(0), &old, &new)
            .len();
        let comp = PrinsReplicator::with_parity_compression()
            .encode_write(Lba(0), &old, &new)
            .len();
        // Falls back to plain parity when compression does not help.
        assert!(comp <= plain + 8, "comp {comp} vs plain {plain}");
    }

    #[test]
    fn full_block_change_falls_back_to_full_image() {
        // Every byte changes: encoded parity would exceed the block, so
        // PRINS ships the full image instead.
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut old = vec![0u8; 8192];
        rng.fill_bytes(&mut old);
        let new: Vec<u8> = old.iter().map(|b| b ^ 0x55).collect();
        let prins = PrinsReplicator::new().encode_write(Lba(3), &old, &new);
        let trad = TraditionalReplicator.encode_write(Lba(3), &old, &new);
        assert_eq!(prins.len(), trad.len(), "fallback must match traditional");
        // And the payload decodes as a full image at the right LBA.
        let payload = crate::Payload::from_bytes(&prins).unwrap();
        assert!(matches!(payload.body, crate::PayloadBody::Full(ref d) if d == &new));
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            TraditionalReplicator.name(),
            CompressedReplicator::default().name(),
            PrinsReplicator::new().name(),
            PrinsReplicator::with_parity_compression().name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn encode_write_into_matches_encode_write_on_fallback() {
        // Full-block change exercises the Full-image fallback branch of
        // the fused PRINS encoder.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut old = vec![0u8; 4096];
        rng.fill_bytes(&mut old);
        let new: Vec<u8> = old.iter().map(|b| b ^ 0x5a).collect();
        let r = PrinsReplicator::new();
        let mut fused = Vec::new();
        r.encode_write_into(Lba(17), &old, &new, &mut fused);
        assert_eq!(fused, r.encode_write(Lba(17), &old, &new));
    }

    #[test]
    fn trait_objects_compose() {
        let reps: Vec<Box<dyn Replicator>> = vec![
            Box::new(TraditionalReplicator),
            Box::new(CompressedReplicator::default()),
            Box::new(PrinsReplicator::new()),
        ];
        let (old, new) = sample_write(64);
        for r in &reps {
            assert!(!r.encode_write(Lba(0), &old, &new).is_empty());
        }
    }

    proptest::proptest! {
        /// `encode_write_into` must be byte-identical to `encode_write`
        /// for every strategy and every write shape: the pooled hot path
        /// may never change what goes on the wire.
        #[test]
        fn prop_encode_write_into_is_byte_identical(
            lba in proptest::prelude::any::<u32>(),
            old in proptest::collection::vec(proptest::prelude::any::<u8>(), 1..1024),
            flips in proptest::collection::vec(
                (proptest::prelude::any::<proptest::sample::Index>(), 1u8..), 0..24)) {
            let mut new = old.clone();
            for (idx, v) in &flips {
                let at = idx.index(new.len());
                new[at] ^= v;
            }
            let reps: Vec<Box<dyn Replicator>> = vec![
                Box::new(TraditionalReplicator),
                Box::new(CompressedReplicator::default()),
                Box::new(PrinsReplicator::new()),
                Box::new(PrinsReplicator::with_parity_compression()),
            ];
            for r in &reps {
                let want = r.encode_write(Lba(lba as u64), &old, &new);
                let mut got = vec![0xA5u8]; // pre-existing byte must survive
                r.encode_write_into(Lba(lba as u64), &old, &new, &mut got);
                proptest::prop_assert_eq!(&got[..1], &[0xA5u8][..], "{}", r.name());
                proptest::prop_assert_eq!(&got[1..], want.as_slice(), "{}", r.name());
            }
        }
    }
}
