//! Error type for the replication layer.

use std::fmt;

use prins_block::BlockError;
use prins_compress::CompressError;
use prins_net::NetError;
use prins_parity::CodecError;

/// Errors from encoding, transporting, or applying replication payloads.
#[derive(Debug)]
#[non_exhaustive]
pub enum ReplError {
    /// Local or replica device failure.
    Block(BlockError),
    /// Parity codec failure while decoding a PRINS payload.
    Parity(CodecError),
    /// Decompression failure on a compressed payload.
    Compress(CompressError),
    /// Transport failure.
    Net(NetError),
    /// A structurally invalid payload.
    Malformed(String),
    /// A replica explicitly rejected a write (answered NAK).
    ///
    /// Distinct from [`ReplError::MissingAck`]: the replica is alive and
    /// reachable but could not apply the payload — cluster lifecycle
    /// logic treats this differently from a vanished node.
    Nak {
        /// Index of the rejecting replica.
        replica: usize,
    },
    /// A frame or block failed its CRC32C integrity check — the bytes
    /// were damaged in flight or on media. Detected *before* apply, so
    /// the corruption is never written; the peer answers `NAK_CORRUPT`
    /// and the sender retransmits.
    ChecksumMismatch {
        /// Checksum the frame/block claimed.
        expected: u32,
        /// Checksum of the bytes actually present.
        got: u32,
    },
    /// A replica answered with something other than an ACK or NAK.
    MissingAck {
        /// Index of the misbehaving replica.
        replica: usize,
        /// First byte of the response, or `None` for an empty frame.
        got: Option<u8>,
    },
}

impl fmt::Display for ReplError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplError::Block(e) => write!(f, "device error: {e}"),
            ReplError::Parity(e) => write!(f, "parity codec error: {e}"),
            ReplError::Compress(e) => write!(f, "decompression error: {e}"),
            ReplError::Net(e) => write!(f, "transport error: {e}"),
            ReplError::Malformed(msg) => write!(f, "malformed replication payload: {msg}"),
            ReplError::Nak { replica } => {
                write!(f, "replica {replica} rejected the write (NAK)")
            }
            ReplError::ChecksumMismatch { expected, got } => {
                write!(
                    f,
                    "checksum mismatch: expected {expected:#010x}, got {got:#010x}"
                )
            }
            ReplError::MissingAck {
                replica,
                got: Some(b),
            } => {
                write!(
                    f,
                    "replica {replica} sent garbage instead of an ack (byte {b:#04x})"
                )
            }
            ReplError::MissingAck { replica, got: None } => {
                write!(f, "replica {replica} sent an empty frame instead of an ack")
            }
        }
    }
}

impl std::error::Error for ReplError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplError::Block(e) => Some(e),
            ReplError::Parity(e) => Some(e),
            ReplError::Compress(e) => Some(e),
            ReplError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BlockError> for ReplError {
    fn from(e: BlockError) -> Self {
        ReplError::Block(e)
    }
}

impl From<CodecError> for ReplError {
    fn from(e: CodecError) -> Self {
        ReplError::Parity(e)
    }
}

impl From<CompressError> for ReplError {
    fn from(e: CompressError) -> Self {
        ReplError::Compress(e)
    }
}

impl From<NetError> for ReplError {
    fn from(e: NetError) -> Self {
        ReplError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources_work() {
        use std::error::Error as _;
        let e = ReplError::from(NetError::Timeout);
        assert!(e.source().is_some());
        let e = ReplError::Malformed("tag 9".into());
        assert!(e.to_string().contains("tag 9"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ReplError>();
    }
}
