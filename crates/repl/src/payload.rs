//! The replication wire payload.
//!
//! Every replicated write is one message:
//!
//! ```text
//! payload := tag(u8) varint(lba) body
//! tag 0 (Full):             raw block bytes
//! tag 1 (Compressed):       varint(block_len) lzss bytes
//! tag 2 (Parity):           sparse-parity bytes (self-describing)
//! tag 3 (ParityCompressed): varint(sparse_len) lzss(sparse bytes)
//! tag 4 (SyncMarker):       empty — end of initial sync
//! tag 8 (StripDelta):       coeff(u8) sparse-parity bytes
//! ```
//!
//! `StripDelta` is the erasure-coded write: the receiver RMW-applies
//! `strip ^= coeff · Δ` in GF(256), where `Δ` is the sparse-decoded
//! delta. For the data strip's owner the coefficient is 1 (plain XOR);
//! parity strip owners get their generator coefficient, so one sparse
//! delta on the wire serves every strip of the stripe. The `lba` field
//! addresses the *stripe* (the node-local strip block index).
//!
//! The LBA travels with the data, mirroring the paper's "results of the
//! forward parity computation are then sent together with meta-data such
//! as LBA to replica nodes".
//!
//! A [`BatchFrame`] packs several payloads into one message (and one
//! acknowledgement round-trip):
//!
//! ```text
//! batch := tag(5) varint(count) { varint(len) payload-bytes }*count
//! ```
//!
//! The batch tag is disjoint from the payload tags, so a receiver
//! dispatches on the first byte.

use prins_block::Lba;
use prins_parity::{decode_varint, encode_varint};

use crate::ReplError;

/// Upper bound on any length claim decoded from the wire
/// (`block_len`, `sparse_len`).
///
/// These varints are attacker-controlled: a frame claiming a
/// multi-gigabyte uncompressed size must be rejected at parse time,
/// before the claim can reach an allocator (the LZSS decoder enforces
/// the same budget as defense in depth). The budget is
/// [`prins_compress::MAX_DECODE_LEN`] — far above the largest block the
/// stack ships (64 KB), far below harm.
pub const MAX_WIRE_LEN: usize = prins_compress::MAX_DECODE_LEN;

/// Decoded body of a replication payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PayloadBody {
    /// Full block image (traditional replication / initial sync).
    Full(Vec<u8>),
    /// LZSS-compressed block image; `block_len` is the uncompressed size.
    Compressed {
        /// Uncompressed block length.
        block_len: usize,
        /// LZSS stream.
        data: Vec<u8>,
    },
    /// Zero-run-encoded PRINS parity.
    Parity(Vec<u8>),
    /// LZSS over the encoded parity (ablation mode).
    ParityCompressed {
        /// Length of the sparse-parity stream before compression.
        sparse_len: usize,
        /// LZSS stream.
        data: Vec<u8>,
    },
    /// Marks the end of an initial sync stream.
    SyncMarker,
    /// Coefficient-tagged erasure-strip delta: apply
    /// `strip ^= coeff · Δ` over GF(256).
    StripDelta {
        /// Generator coefficient (1 for the data strip itself).
        coeff: u8,
        /// Zero-run-encoded delta, same format as [`Parity`].
        ///
        /// [`Parity`]: PayloadBody::Parity
        data: Vec<u8>,
    },
}

/// One replicated write on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Payload {
    /// Address the write applies to.
    pub lba: Lba,
    /// The strategy-specific body.
    pub body: PayloadBody,
}

impl Payload {
    /// Serializes to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match &self.body {
            PayloadBody::Full(data) => {
                out.push(0);
                encode_varint(&mut out, self.lba.index());
                out.extend_from_slice(data);
            }
            PayloadBody::Compressed { block_len, data } => {
                out.push(1);
                encode_varint(&mut out, self.lba.index());
                encode_varint(&mut out, *block_len as u64);
                out.extend_from_slice(data);
            }
            PayloadBody::Parity(data) => {
                out.push(2);
                encode_varint(&mut out, self.lba.index());
                out.extend_from_slice(data);
            }
            PayloadBody::ParityCompressed { sparse_len, data } => {
                out.push(3);
                encode_varint(&mut out, self.lba.index());
                encode_varint(&mut out, *sparse_len as u64);
                out.extend_from_slice(data);
            }
            PayloadBody::SyncMarker => {
                out.push(4);
                encode_varint(&mut out, self.lba.index());
            }
            PayloadBody::StripDelta { coeff, data } => {
                out.push(STRIP_DELTA_TAG);
                encode_varint(&mut out, self.lba.index());
                out.push(*coeff);
                out.extend_from_slice(data);
            }
        }
        out
    }

    /// Parses wire bytes.
    ///
    /// # Errors
    ///
    /// [`ReplError::Malformed`] on unknown tags or truncated headers.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ReplError> {
        let (&tag, rest) = bytes
            .split_first()
            .ok_or_else(|| ReplError::Malformed("empty payload".into()))?;
        let (lba, used) =
            decode_varint(rest).ok_or_else(|| ReplError::Malformed("truncated lba".into()))?;
        let rest = &rest[used..];
        let body = match tag {
            0 => PayloadBody::Full(rest.to_vec()),
            1 => {
                let (block_len, used) = decode_varint(rest)
                    .ok_or_else(|| ReplError::Malformed("truncated block_len".into()))?;
                if block_len > MAX_WIRE_LEN as u64 {
                    return Err(ReplError::Malformed(format!(
                        "block_len {block_len} exceeds budget {MAX_WIRE_LEN}"
                    )));
                }
                PayloadBody::Compressed {
                    block_len: block_len as usize,
                    data: rest[used..].to_vec(),
                }
            }
            2 => PayloadBody::Parity(rest.to_vec()),
            3 => {
                let (sparse_len, used) = decode_varint(rest)
                    .ok_or_else(|| ReplError::Malformed("truncated sparse_len".into()))?;
                if sparse_len > MAX_WIRE_LEN as u64 {
                    return Err(ReplError::Malformed(format!(
                        "sparse_len {sparse_len} exceeds budget {MAX_WIRE_LEN}"
                    )));
                }
                PayloadBody::ParityCompressed {
                    sparse_len: sparse_len as usize,
                    data: rest[used..].to_vec(),
                }
            }
            4 => PayloadBody::SyncMarker,
            STRIP_DELTA_TAG => {
                let (&coeff, rest) = rest
                    .split_first()
                    .ok_or_else(|| ReplError::Malformed("truncated strip coefficient".into()))?;
                PayloadBody::StripDelta {
                    coeff,
                    data: rest.to_vec(),
                }
            }
            other => return Err(ReplError::Malformed(format!("unknown tag {other}"))),
        };
        Ok(Self {
            lba: Lba(lba),
            body,
        })
    }
}

/// Wire tag of a [`BatchFrame`] (the payload tags are 0–4).
pub const BATCH_TAG: u8 = 5;

/// Wire tag of a [`PayloadBody::StripDelta`] payload (6, 7 and 9 are
/// the seal, digest-request and strip-request envelope tags).
pub const STRIP_DELTA_TAG: u8 = 8;

/// Several serialized payloads packed into a single wire message.
///
/// Small PRINS parities pay one network/ack round-trip each; batching
/// amortizes that per-message cost — the replica applies every inner
/// payload in order and answers with a *single* acknowledgement.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchFrame {
    /// The packed payloads, each a serialized [`Payload`], in apply
    /// order.
    pub payloads: Vec<Vec<u8>>,
}

impl BatchFrame {
    /// Whether `bytes` starts like a batch frame (vs a bare payload).
    pub fn is_batch(bytes: &[u8]) -> bool {
        bytes.first() == Some(&BATCH_TAG)
    }

    /// Serializes the frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(8 + self.payloads.iter().map(|p| p.len() + 4).sum::<usize>());
        out.push(BATCH_TAG);
        encode_varint(&mut out, self.payloads.len() as u64);
        for p in &self.payloads {
            encode_varint(&mut out, p.len() as u64);
            out.extend_from_slice(p);
        }
        out
    }

    /// Parses a frame serialized by [`to_bytes`](Self::to_bytes).
    ///
    /// The inner payloads are *not* decoded — apply them one by one so
    /// a malformed element surfaces at its own position.
    ///
    /// # Errors
    ///
    /// [`ReplError::Malformed`] on a wrong tag, truncated length
    /// prefixes, or payloads running past the end of the message.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ReplError> {
        let (&tag, mut rest) = bytes
            .split_first()
            .ok_or_else(|| ReplError::Malformed("empty batch frame".into()))?;
        if tag != BATCH_TAG {
            return Err(ReplError::Malformed(format!(
                "batch frame tag {tag} != {BATCH_TAG}"
            )));
        }
        let (count, used) = decode_varint(rest)
            .ok_or_else(|| ReplError::Malformed("truncated batch count".into()))?;
        rest = &rest[used..];
        // An attacker-controlled count must not drive allocation; cap
        // the pre-allocation by what the message could possibly hold.
        let mut payloads = Vec::with_capacity((count as usize).min(rest.len()));
        for i in 0..count {
            let (len, used) = decode_varint(rest)
                .ok_or_else(|| ReplError::Malformed(format!("truncated length of payload {i}")))?;
            rest = &rest[used..];
            let len = len as usize;
            if len > rest.len() {
                return Err(ReplError::Malformed(format!(
                    "payload {i} length {len} exceeds remaining {}",
                    rest.len()
                )));
            }
            payloads.push(rest[..len].to_vec());
            rest = &rest[len..];
        }
        if !rest.is_empty() {
            return Err(ReplError::Malformed(format!(
                "{} trailing bytes after batch",
                rest.len()
            )));
        }
        Ok(Self { payloads })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn all_bodies_roundtrip() {
        let cases = vec![
            Payload {
                lba: Lba(0),
                body: PayloadBody::Full(vec![1, 2, 3]),
            },
            Payload {
                lba: Lba(u32::MAX as u64 + 5),
                body: PayloadBody::Compressed {
                    block_len: 8192,
                    data: vec![9; 40],
                },
            },
            Payload {
                lba: Lba(300),
                body: PayloadBody::Parity(vec![0xde, 0xad]),
            },
            Payload {
                lba: Lba(7),
                body: PayloadBody::ParityCompressed {
                    sparse_len: 77,
                    data: vec![1; 10],
                },
            },
            Payload {
                lba: Lba(0),
                body: PayloadBody::SyncMarker,
            },
            Payload {
                lba: Lba(42),
                body: PayloadBody::StripDelta {
                    coeff: 0x8e,
                    data: vec![3, 1, 4, 1, 5],
                },
            },
        ];
        for p in cases {
            assert_eq!(Payload::from_bytes(&p.to_bytes()).unwrap(), p);
        }
    }

    #[test]
    fn strip_delta_rejects_missing_coefficient() {
        assert!(Payload::from_bytes(&[STRIP_DELTA_TAG, 0]).is_err());
    }

    #[test]
    fn rejects_empty_and_unknown_tag() {
        assert!(Payload::from_bytes(&[]).is_err());
        assert!(Payload::from_bytes(&[9, 0]).is_err());
    }

    #[test]
    fn rejects_truncated_headers() {
        // tag=1 with lba but no block_len varint
        assert!(Payload::from_bytes(&[1]).is_err());
        // varint continuation byte with nothing after
        assert!(Payload::from_bytes(&[0, 0x80]).is_err());
    }

    #[test]
    fn batch_frame_roundtrips() {
        let frame = BatchFrame {
            payloads: vec![
                Payload {
                    lba: Lba(1),
                    body: PayloadBody::Parity(vec![1, 2, 3]),
                }
                .to_bytes(),
                Payload {
                    lba: Lba(900),
                    body: PayloadBody::Full(vec![0; 64]),
                }
                .to_bytes(),
                Vec::new(),
            ],
        };
        let bytes = frame.to_bytes();
        assert!(BatchFrame::is_batch(&bytes));
        assert_eq!(BatchFrame::from_bytes(&bytes).unwrap(), frame);
        // A bare payload is not mistaken for a batch.
        let bare = Payload {
            lba: Lba(0),
            body: PayloadBody::SyncMarker,
        }
        .to_bytes();
        assert!(!BatchFrame::is_batch(&bare));
        assert!(BatchFrame::from_bytes(&bare).is_err());
    }

    #[test]
    fn batch_frame_rejects_bad_structure() {
        assert!(BatchFrame::from_bytes(&[]).is_err());
        // count says 1 but no length follows
        assert!(BatchFrame::from_bytes(&[BATCH_TAG, 1]).is_err());
        // length runs past the end
        assert!(BatchFrame::from_bytes(&[BATCH_TAG, 1, 5, 0xaa]).is_err());
        // trailing garbage after the declared payloads
        assert!(BatchFrame::from_bytes(&[BATCH_TAG, 1, 1, 0xaa, 0xbb]).is_err());
        // huge declared count must not allocate or panic
        assert!(BatchFrame::from_bytes(&[BATCH_TAG, 0xff, 0xff, 0xff, 0xff, 0x7f]).is_err());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(lba in any::<u64>(), tag in 0u8..6,
                          n in 0usize..256, data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let body = match tag {
                0 => PayloadBody::Full(data),
                1 => PayloadBody::Compressed { block_len: n, data },
                2 => PayloadBody::Parity(data),
                3 => PayloadBody::ParityCompressed { sparse_len: n, data },
                4 => PayloadBody::StripDelta { coeff: n as u8, data },
                _ => PayloadBody::SyncMarker,
            };
            let p = Payload { lba: Lba(lba), body };
            prop_assert_eq!(Payload::from_bytes(&p.to_bytes()).unwrap(), p);
        }

        /// Arbitrary bytes must decode to `Ok` or `Err` — never panic.
        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = Payload::from_bytes(&bytes);
        }

        /// Every strict prefix of a valid encoding either still parses
        /// (trailing data is body bytes) or errors cleanly — no panics
        /// on truncation.
        #[test]
        fn prop_truncation_never_panics(lba in any::<u64>(), tag in 0u8..5,
                                        cut in 0usize..64,
                                        data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let body = match tag {
                0 => PayloadBody::Full(data),
                1 => PayloadBody::Compressed { block_len: data.len(), data },
                2 => PayloadBody::Parity(data),
                3 => PayloadBody::ParityCompressed { sparse_len: data.len(), data },
                _ => PayloadBody::SyncMarker,
            };
            let wire = Payload { lba: Lba(lba), body }.to_bytes();
            let keep = wire.len().saturating_sub(cut);
            let _ = Payload::from_bytes(&wire[..keep]);
        }

        /// Batch frames round-trip through encode/decode for arbitrary
        /// packed payload bytes.
        #[test]
        fn prop_batch_roundtrip(payloads in proptest::collection::vec(
                                    proptest::collection::vec(any::<u8>(), 0..64), 0..12)) {
            let frame = BatchFrame { payloads };
            let back = BatchFrame::from_bytes(&frame.to_bytes()).unwrap();
            prop_assert_eq!(back, frame);
        }

        /// Every truncation of a valid batch frame is rejected cleanly —
        /// never a panic, and never a silent partial decode.
        #[test]
        fn prop_batch_truncation_rejected(payloads in proptest::collection::vec(
                                              proptest::collection::vec(any::<u8>(), 0..32), 1..8),
                                          cut in 1usize..64) {
            let wire = BatchFrame { payloads }.to_bytes();
            let keep = wire.len().saturating_sub(cut.min(wire.len() - 1)); // keep >= 1 (the tag)
            if keep < wire.len() {
                prop_assert!(BatchFrame::from_bytes(&wire[..keep]).is_err());
            }
        }

        /// Arbitrary bytes never panic the batch decoder.
        #[test]
        fn prop_batch_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = BatchFrame::from_bytes(&bytes);
        }
    }
}
