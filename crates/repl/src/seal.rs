//! Sealed wire envelope: epoch tagging + CRC32C end-to-end integrity.
//!
//! PRINS's backward parity computation `A_new = P' ⊕ A_old` silently
//! fabricates garbage if either side of the XOR is wrong, so the wire
//! format cannot rely on TCP's checksum alone (it is too weak and it
//! ends at the NIC, not at the disk). Every frame the pipelined sender
//! or the cluster puts on the wire is wrapped in a *seal*:
//!
//! ```text
//! sealed := tag(6) varint(epoch) crc32c(u32 LE) inner-frame
//! ```
//!
//! * **epoch** — the primary's view of the replica's connection
//!   generation. It is bumped every time the replica goes offline or
//!   rejoins, and the replica echoes the epoch of the last sealed frame
//!   it received in every acknowledgement. That makes stale in-flight
//!   acks from before a rejoin *identifiable* instead of guessable —
//!   the fix for the stale-ack resync-credit bug.
//! * **crc32c** — covers the epoch and the entire inner frame.
//!   Verified before the inner frame is even parsed; a failed check is
//!   [`ReplError::ChecksumMismatch`], answered with [`NAK_CORRUPT`] so
//!   the sender retransmits instead of tearing the link down.
//!
//! Acknowledgements grow the same epoch tag:
//!
//! ```text
//! ack := status(u8) varint(epoch)        status ∈ {ACK, NAK, NAK_CORRUPT}
//! digest-ack := tag(0x19) varint(epoch) crc32c(u32 LE)
//! ```
//!
//! A bare `[ACK]`/`[NAK]` byte still decodes (as epoch 0) so unsealed
//! peers keep working.
//!
//! The scrubber's digest probe is a third frame kind:
//!
//! ```text
//! digest-req := tag(7) varint(lba)
//! ```
//!
//! The replica answers with the CRC32C of the block *as read back from
//! its disk*, which is what lets the primary detect replica-side media
//! corruption that no wire checksum can see.

use prins_block::{crc32c, crc32c_append, Lba};
use prins_parity::{decode_varint, encode_varint};

use crate::{ReplError, ACK, NAK};

/// Wire tag of a sealed envelope (payload tags are 0–4, batch is 5).
pub const SEAL_TAG: u8 = 6;
/// Wire tag of a scrub digest request.
pub const DIGEST_REQ_TAG: u8 = 7;
/// Wire tag of a strip read request (rebuild path; payload tag 8 is
/// the strip delta).
pub const STRIP_REQ_TAG: u8 = 9;
/// Wire tag of an offloaded block read request (serving path).
pub const READ_REQ_TAG: u8 = 10;
/// Acknowledgement status: frame failed its integrity check; the sender
/// should retransmit (the frame was damaged in flight, not rejected).
pub const NAK_CORRUPT: u8 = 0x18;
/// Acknowledgement status of a digest response (carries a CRC32C).
pub const DIGEST_ACK: u8 = 0x19;
/// Acknowledgement status of a strip read response (carries the strip
/// image, zero-run encoded).
pub const STRIP_ACK: u8 = 0x1a;
/// Acknowledgement status of an offloaded read response (carries the
/// block image, zero-run encoded).
pub const READ_ACK: u8 = 0x1b;

fn seal_crc(epoch: u64, inner: &[u8]) -> u32 {
    crc32c_append(crc32c(&epoch.to_le_bytes()), inner)
}

/// Wraps `inner` in a sealed envelope tagged with `epoch`.
pub fn seal_frame(epoch: u64, inner: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(inner.len() + 16);
    out.push(SEAL_TAG);
    encode_varint(&mut out, epoch);
    out.extend_from_slice(&seal_crc(epoch, inner).to_le_bytes());
    out.extend_from_slice(inner);
    out
}

/// An open sealed envelope being written directly into a caller-owned
/// buffer (e.g. a pooled wire buffer): [`seal_begin`] writes the header
/// and reserves the checksum slot, the caller appends the inner frame,
/// and [`finish`](SealWriter::finish) runs **one** CRC32C pass over
/// whatever was appended and patches the slot.
///
/// This is how the sender lanes build batch frames without
/// materializing the inner frame separately: the envelope, the batch
/// header and every payload are appended to a single buffer, and the
/// whole inner region is checksummed in one slicing-by-8 sweep. The
/// bytes produced are identical to
/// `seal_frame(epoch, &BatchFrame { .. }.to_bytes())`.
#[must_use = "a SealWriter must be finished to patch the checksum in"]
pub struct SealWriter {
    epoch: u64,
    crc_at: usize,
    inner_start: usize,
}

/// Starts a sealed envelope at the end of `out`: appends the tag and
/// epoch, reserves the 4-byte checksum slot and returns the writer that
/// patches it. Bytes already in `out` are left untouched.
pub fn seal_begin(epoch: u64, out: &mut Vec<u8>) -> SealWriter {
    out.push(SEAL_TAG);
    encode_varint(out, epoch);
    let crc_at = out.len();
    out.extend_from_slice(&[0u8; 4]);
    SealWriter {
        epoch,
        crc_at,
        inner_start: crc_at + 4,
    }
}

impl SealWriter {
    /// Checksums everything appended to `out` since [`seal_begin`] and
    /// patches it into the reserved slot.
    ///
    /// # Panics
    ///
    /// Panics if `out` was truncated below the envelope header since
    /// [`seal_begin`] — the envelope this writer refers to is gone.
    pub fn finish(self, out: &mut [u8]) {
        assert!(
            out.len() >= self.inner_start,
            "sealed buffer truncated under an open SealWriter"
        );
        let crc = seal_crc(self.epoch, &out[self.inner_start..]);
        out[self.crc_at..self.crc_at + 4].copy_from_slice(&crc.to_le_bytes());
    }
}

/// [`seal_frame`] writing into a caller-owned buffer (appended; earlier
/// bytes are untouched). Byte-identical to `seal_frame(epoch, inner)`.
pub fn seal_frame_into(epoch: u64, inner: &[u8], out: &mut Vec<u8>) {
    let writer = seal_begin(epoch, out);
    out.extend_from_slice(inner);
    writer.finish(out);
}

/// Seals a batch of serialized payloads in one pass: builds the
/// [`BatchFrame`](crate::BatchFrame) body directly inside the envelope
/// (no intermediate frame buffer, no per-payload re-copy) and covers it
/// with a single CRC32C sweep. Byte-identical to
/// `seal_frame(epoch, &BatchFrame { payloads }.to_bytes())`.
pub fn seal_batch_frame_into<P: AsRef<[u8]>>(epoch: u64, payloads: &[P], out: &mut Vec<u8>) {
    let writer = seal_begin(epoch, out);
    out.push(crate::BATCH_TAG);
    encode_varint(out, payloads.len() as u64);
    for p in payloads {
        let p = p.as_ref();
        encode_varint(out, p.len() as u64);
        out.extend_from_slice(p);
    }
    writer.finish(out);
}

/// Whether `bytes` starts like a sealed envelope.
pub fn is_sealed(bytes: &[u8]) -> bool {
    bytes.first() == Some(&SEAL_TAG)
}

/// Opens a sealed envelope, returning `(epoch, inner-frame)`.
///
/// # Errors
///
/// * [`ReplError::Malformed`] if the envelope structure is broken,
/// * [`ReplError::ChecksumMismatch`] if the CRC32C does not cover the
///   bytes received — the frame was corrupted in flight.
pub fn open_frame(bytes: &[u8]) -> Result<(u64, &[u8]), ReplError> {
    let (&tag, rest) = bytes
        .split_first()
        .ok_or_else(|| ReplError::Malformed("empty sealed frame".into()))?;
    if tag != SEAL_TAG {
        return Err(ReplError::Malformed(format!(
            "sealed frame tag {tag} != {SEAL_TAG}"
        )));
    }
    let (epoch, used) =
        decode_varint(rest).ok_or_else(|| ReplError::Malformed("truncated seal epoch".into()))?;
    let rest = &rest[used..];
    if rest.len() < 4 {
        return Err(ReplError::Malformed("truncated seal checksum".into()));
    }
    let expected = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
    let inner = &rest[4..];
    let got = seal_crc(epoch, inner);
    if got != expected {
        return Err(ReplError::ChecksumMismatch { expected, got });
    }
    Ok((epoch, inner))
}

/// A decoded acknowledgement frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AckFrame {
    /// [`ACK`], [`NAK`], [`NAK_CORRUPT`] or [`DIGEST_ACK`].
    pub status: u8,
    /// Epoch of the last sealed frame the replica received (0 when the
    /// replica has never seen a seal, or for bare legacy acks).
    pub epoch: u64,
    /// Block digest, present only for [`DIGEST_ACK`] responses.
    pub digest: Option<u32>,
}

/// Encodes an epoch-tagged acknowledgement (`status` + varint epoch).
pub fn encode_ack(status: u8, epoch: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(11);
    out.push(status);
    encode_varint(&mut out, epoch);
    out
}

/// Encodes a digest response: the CRC32C of a block as read from the
/// replica's own disk.
pub fn encode_digest_ack(epoch: u64, digest: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(15);
    out.push(DIGEST_ACK);
    encode_varint(&mut out, epoch);
    out.extend_from_slice(&digest.to_le_bytes());
    out
}

/// Decodes an acknowledgement frame in any of its shapes: bare legacy
/// `[ACK]`/`[NAK]` (epoch 0), epoch-tagged status, or a digest
/// response.
///
/// # Errors
///
/// [`ReplError::Malformed`] on empty frames, unknown status bytes, or
/// truncated epoch/digest fields.
pub fn decode_ack(bytes: &[u8]) -> Result<AckFrame, ReplError> {
    let (&status, rest) = bytes
        .split_first()
        .ok_or_else(|| ReplError::Malformed("empty ack frame".into()))?;
    if !matches!(status, ACK | NAK | NAK_CORRUPT | DIGEST_ACK) {
        return Err(ReplError::Malformed(format!(
            "unknown ack status {status:#04x}"
        )));
    }
    if rest.is_empty() && (status == ACK || status == NAK) {
        // Legacy single-byte acknowledgement.
        return Ok(AckFrame {
            status,
            epoch: 0,
            digest: None,
        });
    }
    let (epoch, used) =
        decode_varint(rest).ok_or_else(|| ReplError::Malformed("truncated ack epoch".into()))?;
    let rest = &rest[used..];
    let digest = if status == DIGEST_ACK {
        if rest.len() != 4 {
            return Err(ReplError::Malformed("truncated digest".into()));
        }
        Some(u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]))
    } else {
        if !rest.is_empty() {
            return Err(ReplError::Malformed(format!(
                "{} trailing bytes after ack",
                rest.len()
            )));
        }
        None
    };
    Ok(AckFrame {
        status,
        epoch,
        digest,
    })
}

/// Encodes a scrub digest request for `lba`.
pub fn encode_digest_request(lba: Lba) -> Vec<u8> {
    let mut out = Vec::with_capacity(11);
    out.push(DIGEST_REQ_TAG);
    encode_varint(&mut out, lba.index());
    out
}

/// Whether `bytes` starts like a digest request.
pub fn is_digest_request(bytes: &[u8]) -> bool {
    bytes.first() == Some(&DIGEST_REQ_TAG)
}

/// Decodes a digest request, returning the probed LBA.
///
/// # Errors
///
/// [`ReplError::Malformed`] on a wrong tag, truncated varint, or
/// trailing bytes.
pub fn decode_digest_request(bytes: &[u8]) -> Result<Lba, ReplError> {
    let (&tag, rest) = bytes
        .split_first()
        .ok_or_else(|| ReplError::Malformed("empty digest request".into()))?;
    if tag != DIGEST_REQ_TAG {
        return Err(ReplError::Malformed(format!(
            "digest request tag {tag} != {DIGEST_REQ_TAG}"
        )));
    }
    let (lba, used) = decode_varint(rest)
        .ok_or_else(|| ReplError::Malformed("truncated digest request lba".into()))?;
    if used != rest.len() {
        return Err(ReplError::Malformed(
            "trailing bytes after digest request".into(),
        ));
    }
    Ok(Lba(lba))
}

/// Encodes a rebuild strip read request for the strip block at `lba`.
pub fn encode_strip_request(lba: Lba) -> Vec<u8> {
    let mut out = Vec::with_capacity(11);
    out.push(STRIP_REQ_TAG);
    encode_varint(&mut out, lba.index());
    out
}

/// Whether `bytes` starts like a strip read request.
pub fn is_strip_request(bytes: &[u8]) -> bool {
    bytes.first() == Some(&STRIP_REQ_TAG)
}

/// Decodes a strip read request, returning the requested strip block.
///
/// # Errors
///
/// [`ReplError::Malformed`] on a wrong tag, truncated varint, or
/// trailing bytes.
pub fn decode_strip_request(bytes: &[u8]) -> Result<Lba, ReplError> {
    let (&tag, rest) = bytes
        .split_first()
        .ok_or_else(|| ReplError::Malformed("empty strip request".into()))?;
    if tag != STRIP_REQ_TAG {
        return Err(ReplError::Malformed(format!(
            "strip request tag {tag} != {STRIP_REQ_TAG}"
        )));
    }
    let (lba, used) = decode_varint(rest)
        .ok_or_else(|| ReplError::Malformed("truncated strip request lba".into()))?;
    if used != rest.len() {
        return Err(ReplError::Malformed(
            "trailing bytes after strip request".into(),
        ));
    }
    Ok(Lba(lba))
}

/// Encodes an offloaded block read request for `lba`.
///
/// The serving path's twin of [`encode_strip_request`]: a primary asks
/// an in-sync replica for the current image of a block so reads scale
/// out across the replica set. Always sent sealed — the epoch the
/// replica echoes back in its [`READ_ACK`] is what lets the primary
/// reject answers computed before a rejoin.
pub fn encode_read_request(lba: Lba) -> Vec<u8> {
    let mut out = Vec::with_capacity(11);
    out.push(READ_REQ_TAG);
    encode_varint(&mut out, lba.index());
    out
}

/// Whether `bytes` starts like an offloaded read request.
pub fn is_read_request(bytes: &[u8]) -> bool {
    bytes.first() == Some(&READ_REQ_TAG)
}

/// Decodes an offloaded read request, returning the requested block.
///
/// # Errors
///
/// [`ReplError::Malformed`] on a wrong tag, truncated varint, or
/// trailing bytes.
pub fn decode_read_request(bytes: &[u8]) -> Result<Lba, ReplError> {
    let (&tag, rest) = bytes
        .split_first()
        .ok_or_else(|| ReplError::Malformed("empty read request".into()))?;
    if tag != READ_REQ_TAG {
        return Err(ReplError::Malformed(format!(
            "read request tag {tag} != {READ_REQ_TAG}"
        )));
    }
    let (lba, used) = decode_varint(rest)
        .ok_or_else(|| ReplError::Malformed("truncated read request lba".into()))?;
    if used != rest.len() {
        return Err(ReplError::Malformed(
            "trailing bytes after read request".into(),
        ));
    }
    Ok(Lba(lba))
}

/// Encodes an offloaded read response: the zero-run-encoded block image
/// as read from the replica's disk, CRC-protected so a served read is
/// never silently damaged in flight.
///
/// ```text
/// read-ack := status(0x1b) varint(epoch) crc32c(u32 LE) sparse-bytes
/// ```
pub fn encode_read_ack(epoch: u64, sparse: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(sparse.len() + 16);
    out.push(READ_ACK);
    encode_varint(&mut out, epoch);
    out.extend_from_slice(&seal_crc(epoch, sparse).to_le_bytes());
    out.extend_from_slice(sparse);
    out
}

/// Decodes an offloaded read response, returning `(epoch, sparse-bytes)`.
///
/// # Errors
///
/// [`ReplError::Malformed`] on structure errors;
/// [`ReplError::ChecksumMismatch`] if the image was damaged in flight.
pub fn decode_read_ack(bytes: &[u8]) -> Result<(u64, &[u8]), ReplError> {
    let (&status, rest) = bytes
        .split_first()
        .ok_or_else(|| ReplError::Malformed("empty read ack".into()))?;
    if status != READ_ACK {
        return Err(ReplError::Malformed(format!(
            "read ack status {status:#04x} != {READ_ACK:#04x}"
        )));
    }
    let (epoch, used) = decode_varint(rest)
        .ok_or_else(|| ReplError::Malformed("truncated read ack epoch".into()))?;
    let rest = &rest[used..];
    if rest.len() < 4 {
        return Err(ReplError::Malformed("truncated read ack checksum".into()));
    }
    let expected = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
    let sparse = &rest[4..];
    let got = seal_crc(epoch, sparse);
    if got != expected {
        return Err(ReplError::ChecksumMismatch { expected, got });
    }
    Ok((epoch, sparse))
}

/// Encodes a strip read response: the zero-run-encoded strip image as
/// read from the replica's disk, CRC-protected like a sealed frame so
/// a rebuild never decodes a corrupted contribution.
///
/// ```text
/// strip-ack := status(0x1a) varint(epoch) crc32c(u32 LE) sparse-bytes
/// ```
pub fn encode_strip_ack(epoch: u64, sparse: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(sparse.len() + 16);
    out.push(STRIP_ACK);
    encode_varint(&mut out, epoch);
    out.extend_from_slice(&seal_crc(epoch, sparse).to_le_bytes());
    out.extend_from_slice(sparse);
    out
}

/// Decodes a strip read response, returning `(epoch, sparse-bytes)`.
///
/// # Errors
///
/// [`ReplError::Malformed`] on structure errors;
/// [`ReplError::ChecksumMismatch`] if the image was damaged in flight.
pub fn decode_strip_ack(bytes: &[u8]) -> Result<(u64, &[u8]), ReplError> {
    let (&status, rest) = bytes
        .split_first()
        .ok_or_else(|| ReplError::Malformed("empty strip ack".into()))?;
    if status != STRIP_ACK {
        return Err(ReplError::Malformed(format!(
            "strip ack status {status:#04x} != {STRIP_ACK:#04x}"
        )));
    }
    let (epoch, used) = decode_varint(rest)
        .ok_or_else(|| ReplError::Malformed("truncated strip ack epoch".into()))?;
    let rest = &rest[used..];
    if rest.len() < 4 {
        return Err(ReplError::Malformed("truncated strip ack checksum".into()));
    }
    let expected = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
    let sparse = &rest[4..];
    let got = seal_crc(epoch, sparse);
    if got != expected {
        return Err(ReplError::ChecksumMismatch { expected, got });
    }
    Ok((epoch, sparse))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn seal_roundtrips() {
        for epoch in [0u64, 1, 127, 128, u64::MAX] {
            let inner = vec![1u8, 2, 3, 4, 5];
            let sealed = seal_frame(epoch, &inner);
            assert!(is_sealed(&sealed));
            let (e, i) = open_frame(&sealed).unwrap();
            assert_eq!((e, i), (epoch, inner.as_slice()));
        }
    }

    #[test]
    fn open_rejects_structure_and_corruption() {
        assert!(open_frame(&[]).is_err());
        assert!(open_frame(&[0, 1, 2]).is_err());
        assert!(open_frame(&[SEAL_TAG]).is_err());
        assert!(open_frame(&[SEAL_TAG, 0x80]).is_err()); // dangling varint
        assert!(open_frame(&[SEAL_TAG, 0, 1, 2]).is_err()); // short crc
        let mut sealed = seal_frame(3, b"payload");
        let last = sealed.len() - 1;
        sealed[last] ^= 0x01;
        assert!(matches!(
            open_frame(&sealed),
            Err(ReplError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn seal_frame_into_appends_and_matches_seal_frame() {
        let mut out = vec![0xEEu8; 3]; // pre-existing bytes must survive
        seal_frame_into(9, b"inner bytes", &mut out);
        assert_eq!(&out[..3], &[0xEE; 3]);
        assert_eq!(&out[3..], seal_frame(9, b"inner bytes").as_slice());
    }

    #[test]
    fn batch_seal_is_byte_identical_to_frame_then_seal() {
        let payloads: Vec<Vec<u8>> = vec![vec![1, 2, 3], Vec::new(), vec![0xab; 300]];
        let expected = seal_frame(
            4,
            &crate::BatchFrame {
                payloads: payloads.clone(),
            }
            .to_bytes(),
        );
        let mut got = Vec::new();
        seal_batch_frame_into(4, &payloads, &mut got);
        assert_eq!(got, expected);
    }

    #[test]
    #[should_panic(expected = "truncated under an open SealWriter")]
    fn finish_rejects_truncated_buffer() {
        let mut out = Vec::new();
        let writer = seal_begin(1, &mut out);
        out.clear();
        writer.finish(&mut out);
    }

    #[test]
    fn acks_roundtrip_in_all_shapes() {
        for (status, epoch) in [(ACK, 0u64), (ACK, 9), (NAK, 3), (NAK_CORRUPT, 1 << 40)] {
            let frame = encode_ack(status, epoch);
            assert_eq!(
                decode_ack(&frame).unwrap(),
                AckFrame {
                    status,
                    epoch,
                    digest: None
                }
            );
        }
        // Legacy bare bytes still decode as epoch 0.
        for status in [ACK, NAK] {
            assert_eq!(
                decode_ack(&[status]).unwrap(),
                AckFrame {
                    status,
                    epoch: 0,
                    digest: None
                }
            );
        }
        let digest = encode_digest_ack(7, 0xdead_beef);
        assert_eq!(
            decode_ack(&digest).unwrap(),
            AckFrame {
                status: DIGEST_ACK,
                epoch: 7,
                digest: Some(0xdead_beef)
            }
        );
    }

    #[test]
    fn decode_ack_rejects_garbage() {
        assert!(decode_ack(&[]).is_err());
        assert!(decode_ack(&[0x7f]).is_err());
        assert!(decode_ack(&[NAK_CORRUPT]).is_err()); // corrupt-nak needs an epoch
        assert!(decode_ack(&[ACK, 0x80]).is_err()); // dangling varint
        assert!(decode_ack(&[ACK, 0, 9]).is_err()); // trailing byte
        assert!(decode_ack(&[DIGEST_ACK, 0, 1, 2]).is_err()); // short digest
    }

    #[test]
    fn digest_request_roundtrips() {
        let req = encode_digest_request(Lba(12345));
        assert!(is_digest_request(&req));
        assert_eq!(decode_digest_request(&req).unwrap(), Lba(12345));
        assert!(decode_digest_request(&[DIGEST_REQ_TAG]).is_err());
        assert!(decode_digest_request(&[DIGEST_REQ_TAG, 0, 0]).is_err());
        assert!(decode_digest_request(&[0, 0]).is_err());
    }

    #[test]
    fn strip_request_and_ack_roundtrip() {
        let req = encode_strip_request(Lba(77));
        assert!(is_strip_request(&req));
        assert!(!is_digest_request(&req));
        assert_eq!(decode_strip_request(&req).unwrap(), Lba(77));
        assert!(decode_strip_request(&[STRIP_REQ_TAG]).is_err());
        assert!(decode_strip_request(&[STRIP_REQ_TAG, 0, 0]).is_err());

        let ack = encode_strip_ack(5, b"sparse-strip");
        let (epoch, body) = decode_strip_ack(&ack).unwrap();
        assert_eq!((epoch, body), (5, b"sparse-strip".as_slice()));
        // Damage anywhere in the body is caught by the seal CRC.
        let mut bad = ack.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(matches!(
            decode_strip_ack(&bad),
            Err(ReplError::ChecksumMismatch { .. })
        ));
        assert!(decode_strip_ack(&[STRIP_ACK, 0, 1, 2]).is_err());
        assert!(decode_strip_ack(&[ACK, 0]).is_err());
    }

    #[test]
    fn read_request_and_ack_roundtrip() {
        let req = encode_read_request(Lba(4321));
        assert!(is_read_request(&req));
        assert!(!is_strip_request(&req));
        assert!(!is_digest_request(&req));
        assert_eq!(decode_read_request(&req).unwrap(), Lba(4321));
        assert!(decode_read_request(&[READ_REQ_TAG]).is_err());
        assert!(decode_read_request(&[READ_REQ_TAG, 0, 0]).is_err());
        assert!(decode_read_request(&[0, 0]).is_err());

        let ack = encode_read_ack(11, b"sparse-block");
        let (epoch, body) = decode_read_ack(&ack).unwrap();
        assert_eq!((epoch, body), (11, b"sparse-block".as_slice()));
        // Damage anywhere in the body is caught by the seal CRC.
        let mut bad = ack.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(matches!(
            decode_read_ack(&bad),
            Err(ReplError::ChecksumMismatch { .. })
        ));
        assert!(decode_read_ack(&[READ_ACK, 0, 1, 2]).is_err());
        assert!(decode_read_ack(&encode_strip_ack(11, b"x")).is_err());
    }

    proptest! {
        /// Sealed frames round-trip for arbitrary epochs and inner bytes.
        #[test]
        fn prop_seal_roundtrip(epoch in any::<u64>(),
                               inner in proptest::collection::vec(any::<u8>(), 0..512)) {
            let sealed = seal_frame(epoch, &inner);
            let (e, i) = open_frame(&sealed).unwrap();
            prop_assert_eq!(e, epoch);
            prop_assert_eq!(i, inner.as_slice());
        }

        /// Any single-bit flip anywhere in a sealed frame is rejected —
        /// it never opens successfully, so corruption cannot be applied.
        #[test]
        fn prop_any_single_bit_flip_is_rejected(
                epoch in any::<u64>(),
                inner in proptest::collection::vec(any::<u8>(), 0..128),
                byte in any::<prop::sample::Index>(),
                bit in 0u8..8) {
            let mut sealed = seal_frame(epoch, &inner);
            let at = byte.index(sealed.len());
            sealed[at] ^= 1 << bit;
            prop_assert!(open_frame(&sealed).is_err());
        }

        /// Arbitrary bytes never panic the openers/decoders.
        #[test]
        fn prop_decoders_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = open_frame(&bytes);
            let _ = decode_ack(&bytes);
            let _ = decode_digest_request(&bytes);
            let _ = decode_read_request(&bytes);
            let _ = decode_read_ack(&bytes);
        }

        /// The in-place builder produces the exact bytes of the
        /// allocate-then-seal path for any epoch and inner frame.
        #[test]
        fn prop_seal_frame_into_is_byte_identical(
                epoch in any::<u64>(),
                inner in proptest::collection::vec(any::<u8>(), 0..512)) {
            let mut got = Vec::new();
            seal_frame_into(epoch, &inner, &mut got);
            prop_assert_eq!(got, seal_frame(epoch, &inner));
        }

        /// Batch-aware sealing (single buffer, single CRC sweep) is
        /// byte-identical to building the batch frame and sealing it —
        /// so the read side needs no changes at all.
        #[test]
        fn prop_batch_seal_is_byte_identical(
                epoch in any::<u64>(),
                payloads in proptest::collection::vec(
                    proptest::collection::vec(any::<u8>(), 0..128), 0..10)) {
            let expected = seal_frame(
                epoch,
                &crate::BatchFrame { payloads: payloads.clone() }.to_bytes(),
            );
            let mut got = Vec::new();
            seal_batch_frame_into(epoch, &payloads, &mut got);
            prop_assert_eq!(&got, &expected);
            // And it opens to the same batch.
            let (e, inner) = open_frame(&got).unwrap();
            prop_assert_eq!(e, epoch);
            prop_assert_eq!(crate::BatchFrame::from_bytes(inner).unwrap().payloads, payloads);
        }
    }
}
