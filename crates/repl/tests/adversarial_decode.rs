#![recursion_limit = "1024"]
//! Adversarial wire-decode corpus.
//!
//! The replica parses frames a hostile peer controls byte for byte.
//! These tests pin the decode-side hardening:
//!
//! * oversized length claims (`block_len`, `sparse_len`, batch counts,
//!   LZSS `expected_len`) are rejected at parse time, before any
//!   allocator sees them;
//! * truncated LZSS streams fail cleanly through the full apply path;
//! * a counting allocator proves decoding arbitrary bytes never makes a
//!   single allocation beyond the wire budget (plus `Vec` growth
//!   doubling slack) — no matter what the frame claims.
//!
//! Kept in its own test binary because of the global allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use prins_block::{BlockSize, MemDevice};
use prins_parity::encode_varint;
use prins_repl::{BatchFrame, Payload, PayloadBody, ReplError, ReplicaApplier, MAX_WIRE_LEN};
use proptest::prelude::*;

struct MaxAlloc;

static WATCHING: AtomicBool = AtomicBool::new(false);
static LARGEST: AtomicUsize = AtomicUsize::new(0);

fn note(size: usize) {
    if WATCHING.load(Ordering::Relaxed) {
        LARGEST.fetch_max(size, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for MaxAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note(new_size);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: MaxAlloc = MaxAlloc;

/// A frame of `tag`, an LBA, then raw `body` bytes.
fn frame(tag: u8, body: &[u8]) -> Vec<u8> {
    let mut out = vec![tag];
    encode_varint(&mut out, 3); // lba
    out.extend_from_slice(body);
    out
}

/// A frame whose body starts with a length varint claiming `claim`.
fn frame_with_claim(tag: u8, claim: u64, data: &[u8]) -> Vec<u8> {
    let mut out = vec![tag];
    encode_varint(&mut out, 3);
    encode_varint(&mut out, claim);
    out.extend_from_slice(data);
    out
}

#[test]
fn oversized_length_claims_are_rejected_per_tag() {
    let huge = (MAX_WIRE_LEN as u64) + 1;
    // Tag 1 (Compressed): block_len over budget.
    let r = Payload::from_bytes(&frame_with_claim(1, huge, &[0x02, 0xaa]));
    assert!(matches!(r, Err(ReplError::Malformed(_))), "{r:?}");
    // Tag 3 (ParityCompressed): sparse_len over budget.
    let r = Payload::from_bytes(&frame_with_claim(3, huge, &[0x02, 0xaa]));
    assert!(matches!(r, Err(ReplError::Malformed(_))), "{r:?}");
    // u64::MAX claims must not wrap into small usize values.
    for tag in [1u8, 3] {
        assert!(Payload::from_bytes(&frame_with_claim(tag, u64::MAX, &[])).is_err());
    }
    // The largest in-budget claim still parses (the decompressor then
    // enforces it against the actual stream).
    for tag in [1u8, 3] {
        let p = Payload::from_bytes(&frame_with_claim(tag, MAX_WIRE_LEN as u64, &[0x02, 0xaa]));
        assert!(p.is_ok(), "{p:?}");
    }
    // Tags without a length varint still decode arbitrary bodies without
    // trusting any claim (bodies are bounded by the message itself).
    for tag in [0u8, 2] {
        assert!(Payload::from_bytes(&frame(tag, &[0xff; 32])).is_ok());
    }
    assert!(Payload::from_bytes(&frame(8, &[1, 0xff, 0xff])).is_ok());
    // Batch (tag 5): a giant count with no payloads behind it.
    let mut batch = vec![5u8];
    encode_varint(&mut batch, u64::MAX / 2);
    assert!(BatchFrame::from_bytes(&batch).is_err());
}

#[test]
fn truncated_lzss_streams_fail_cleanly_through_apply() {
    use prins_compress::{Codec, Lzss};
    let device = MemDevice::new(BlockSize::kb4(), 4);
    let mut applier = ReplicaApplier::new(&device);

    let block: Vec<u8> = (0..4096u32).map(|i| (i / 7) as u8).collect();
    let packed = Lzss::fast().compress(&block);
    let whole = Payload {
        lba: prins_block::Lba(1),
        body: PayloadBody::Compressed {
            block_len: 4096,
            data: packed.clone(),
        },
    }
    .to_bytes();
    assert!(applier.apply(&whole).unwrap());

    // Every proper prefix of the compressed stream must be rejected
    // (Compress or Malformed), never applied and never a panic.
    for cut in 0..packed.len() {
        let hostile = Payload {
            lba: prins_block::Lba(2),
            body: PayloadBody::Compressed {
                block_len: 4096,
                data: packed[..cut].to_vec(),
            },
        }
        .to_bytes();
        assert!(applier.apply(&hostile).is_err(), "cut={cut}");
    }
    // Same through the ParityCompressed arm: claim a sparse_len the
    // truncated stream cannot produce.
    for cut in [0, 1, packed.len() / 2] {
        let hostile = Payload {
            lba: prins_block::Lba(2),
            body: PayloadBody::ParityCompressed {
                sparse_len: 4096,
                data: packed[..cut].to_vec(),
            },
        }
        .to_bytes();
        assert!(applier.apply(&hostile).is_err(), "cut={cut}");
    }
    assert_eq!(applier.applied(), 1, "no hostile frame may apply");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Decoding arbitrary bytes — bare payload, batch, and the full
    /// apply path including LZSS — never allocates a single buffer
    /// beyond the wire budget. `Vec` doubles its capacity while
    /// growing, so the observable bound is 2x the budget; the point is
    /// that a 16-byte frame claiming 4 GB allocates nothing of the
    /// sort.
    #[test]
    fn prop_decode_allocations_stay_under_the_wire_budget(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
        tag in 0u8..10,
        claim in any::<u64>(),
    ) {
        let mut bytes = bytes;
        let device = MemDevice::new(BlockSize::kb4(), 4);
        let mut applier = ReplicaApplier::new(&device);
        let claimed = frame_with_claim(tag % 6, claim, &bytes);

        LARGEST.store(0, Ordering::SeqCst);
        WATCHING.store(true, Ordering::SeqCst);
        let _ = Payload::from_bytes(&bytes);
        let _ = Payload::from_bytes(&claimed);
        let _ = BatchFrame::from_bytes(&bytes);
        let _ = applier.apply(&bytes);
        let _ = applier.apply(&claimed);
        if !bytes.is_empty() {
            bytes[0] = tag; // retry with every dispatchable tag byte
            let _ = applier.apply(&bytes);
        }
        WATCHING.store(false, Ordering::SeqCst);

        let largest = LARGEST.load(Ordering::SeqCst);
        prop_assert!(
            largest <= 2 * MAX_WIRE_LEN,
            "a decode allocated {largest} bytes from a {}-byte frame",
            claimed.len(),
        );
    }
}
