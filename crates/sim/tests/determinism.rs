//! Seed replay is exact: the same seed produces a byte-identical event
//! trace and verdict on every run.

use prins_sim::{generate, run_case, run_seed};

/// The documented replay seed (see README): a mixed fault schedule
/// that exercises severs, drops and rejoins and converges cleanly.
const DOCUMENTED_SEED: u64 = 0xC0FFEE;

#[test]
fn documented_seed_replays_byte_identically() {
    let first = run_seed(DOCUMENTED_SEED);
    let second = run_seed(DOCUMENTED_SEED);
    assert_eq!(
        first.trace, second.trace,
        "same seed must produce a byte-identical event trace"
    );
    assert_eq!(first.verdict, second.verdict);
    assert_eq!(first.verdict, Ok(()), "documented seed must pass");
    assert!(
        first.trace.lines().count() > 10,
        "trace should record real network activity"
    );
}

#[test]
fn seed_expansion_is_deterministic() {
    for seed in [0u64, 1, 42, u64::MAX] {
        let a = generate(seed);
        let b = generate(seed);
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.replicas, b.replicas);
        assert_eq!(a.ack_window, b.ack_window);
    }
}

#[test]
fn distinct_seeds_give_distinct_schedules() {
    assert_ne!(generate(1).ops, generate(2).ops);
}

#[test]
fn a_small_seed_sweep_converges() {
    for seed in 0u64..8 {
        let report = run_case(&generate(seed));
        assert_eq!(
            report.verdict,
            Ok(()),
            "seed {seed:#x} failed:\n{}",
            report.trace
        );
    }
}
