//! Every named scenario passes the full invariant set.

use prins_sim::{run_scenario, SCENARIOS};

#[test]
fn all_named_scenarios_pass() {
    let mut failures = Vec::new();
    for (name, f) in SCENARIOS {
        if let Err(e) = f() {
            failures.push(format!("{name}: {e}"));
        }
    }
    assert!(
        failures.is_empty(),
        "scenarios failed:\n{}",
        failures.join("\n")
    );
}

#[test]
fn scenario_lookup_by_name() {
    assert!(run_scenario("link_flap").is_ok());
    assert!(run_scenario("no_such_scenario").is_err());
}

#[test]
fn scenario_table_covers_the_required_set() {
    let names: Vec<&str> = SCENARIOS.iter().map(|(n, _)| *n).collect();
    for required in [
        "link_flap",
        "crash_mid_resync",
        "reorder",
        "dup",
        "slow_wan",
        "quorum_loss",
        "fold_then_crash",
        "prune_then_rejoin",
    ] {
        assert!(names.contains(&required), "missing scenario {required}");
    }
    assert!(names.len() >= 8);
}
