//! Seed replay and corpus runner for the simulation fuzzer.
//!
//! ```text
//! sim-replay <seed>                  replay one fuzz seed, print trace + verdict
//! sim-replay scenario <name|prefix*|all> [--events] [--traces]
//!                                    run named scenario(s); --events prints
//!                                    each run's deterministic event-count
//!                                    summary, --traces its flight-recorder
//!                                    trace summary (both diffed against
//!                                    goldens in CI)
//! sim-replay corpus <file> [--fresh N] [--append-failures]
//!                                    run every seed in <file> plus N fresh
//!                                    random seeds; print failing seeds;
//!                                    optionally append them to <file>
//! ```
//!
//! Seeds parse as decimal or `0x`-prefixed hex. Exit code is non-zero
//! if any seed or scenario fails.

use std::fs;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::{SystemTime, UNIX_EPOCH};

use prins_sim::{fuzz_seed, run_scenario_full, run_seed, SCENARIOS};

fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn replay_one(seed: u64) -> bool {
    let report = run_seed(seed);
    println!("{}", report.trace);
    match report.verdict {
        Ok(()) => {
            println!("seed {seed:#x}: ok");
            true
        }
        Err(_) => match fuzz_seed(seed) {
            Err(failure) => {
                println!("seed {seed:#x}: FAILED: {}", failure.message);
                println!("minimized schedule ({} ops):", failure.minimized.len());
                for op in &failure.minimized {
                    println!("  {op:?}");
                }
                false
            }
            Ok(()) => {
                println!("seed {seed:#x}: FAILED (not reproducible through fuzz_seed?)");
                false
            }
        },
    }
}

fn run_corpus(path: &str, fresh: usize, append_failures: bool) -> bool {
    let mut seeds: Vec<u64> = Vec::new();
    match fs::read_to_string(path) {
        Ok(text) => {
            for line in text.lines() {
                let line = line.split('#').next().unwrap_or("").trim();
                if line.is_empty() {
                    continue;
                }
                match parse_seed(line) {
                    Some(seed) => seeds.push(seed),
                    None => eprintln!("corpus {path}: skipping unparsable line '{line}'"),
                }
            }
        }
        Err(e) => {
            eprintln!("corpus {path}: {e}");
            return false;
        }
    }
    let corpus_len = seeds.len();
    // Fresh seeds are the one place entropy is allowed: the whole point
    // is that whatever they find is pinned by printing the seed.
    let entropy = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    for i in 0..fresh {
        seeds.push(
            entropy
                .wrapping_add(i as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
    }
    let mut failures: Vec<u64> = Vec::new();
    for (i, &seed) in seeds.iter().enumerate() {
        let origin = if i < corpus_len { "corpus" } else { "fresh" };
        match fuzz_seed(seed) {
            Ok(()) => println!("{origin} seed {seed:#x}: ok"),
            Err(failure) => {
                println!("{origin} seed {seed:#x}: FAILED: {}", failure.message);
                println!("  minimized schedule ({} ops):", failure.minimized.len());
                for op in &failure.minimized {
                    println!("    {op:?}");
                }
                println!("  replay with: sim-replay {seed:#x}");
                failures.push(seed);
            }
        }
    }
    if append_failures && !failures.is_empty() {
        match fs::OpenOptions::new().append(true).open(path) {
            Ok(mut f) => {
                for seed in &failures {
                    let _ = writeln!(f, "{seed:#x} # regression, auto-appended");
                }
                println!("appended {} failing seed(s) to {path}", failures.len());
            }
            Err(e) => eprintln!("could not append failures to {path}: {e}"),
        }
    }
    println!(
        "corpus run: {} seed(s) ({corpus_len} corpus + {fresh} fresh), {} failure(s)",
        seeds.len(),
        failures.len()
    );
    failures.is_empty()
}

fn run_scenarios(pattern: &str, events: bool, traces: bool) -> bool {
    // `all` runs everything; a trailing `*` runs every scenario with
    // that prefix (how CI pins the corruption_* event-summary golden).
    let names: Vec<&str> = if pattern == "all" {
        SCENARIOS.iter().map(|(n, _)| *n).collect()
    } else if let Some(prefix) = pattern.strip_suffix('*') {
        SCENARIOS
            .iter()
            .map(|(n, _)| *n)
            .filter(|n| n.starts_with(prefix))
            .collect()
    } else {
        vec![pattern]
    };
    if names.is_empty() {
        println!("no scenario matches '{pattern}'");
        return false;
    }
    let mut ok = true;
    for name in names {
        match run_scenario_full(name) {
            Ok(outcome) => {
                if events {
                    println!("scenario {name}: {}", outcome.events);
                }
                if traces {
                    println!("scenario {name}: {}", outcome.traces);
                }
                if !events && !traces {
                    println!("scenario {name}: ok");
                }
            }
            Err(e) => {
                println!("scenario {name}: FAILED: {e}");
                ok = false;
            }
        }
    }
    ok
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ok = match args.first().map(String::as_str) {
        Some("scenario") => match args.get(1) {
            Some(name) => run_scenarios(
                name,
                args.iter().any(|a| a == "--events"),
                args.iter().any(|a| a == "--traces"),
            ),
            None => {
                eprintln!("usage: sim-replay scenario <name|prefix*|all> [--events] [--traces]");
                false
            }
        },
        Some("corpus") => match args.get(1) {
            Some(path) => {
                let mut fresh = 0usize;
                let mut append = false;
                let mut it = args[2..].iter();
                while let Some(arg) = it.next() {
                    match arg.as_str() {
                        "--fresh" => {
                            fresh = it.next().and_then(|v| v.parse().ok()).unwrap_or(0);
                        }
                        "--append-failures" => append = true,
                        other => eprintln!("ignoring unknown flag '{other}'"),
                    }
                }
                run_corpus(path, fresh, append)
            }
            None => {
                eprintln!("usage: sim-replay corpus <file> [--fresh N] [--append-failures]");
                false
            }
        },
        Some(seed_str) => match parse_seed(seed_str) {
            Some(seed) => replay_one(seed),
            None => {
                eprintln!("unparsable seed '{seed_str}'");
                false
            }
        },
        None => {
            eprintln!(
                "usage: sim-replay <seed> | sim-replay scenario <name|all> | \
                 sim-replay corpus <file> [--fresh N] [--append-failures]"
            );
            false
        }
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
