//! Simulation worlds: the *real* engine and cluster code wired to a
//! [`SimNet`], plus the invariant checkers run against them.
//!
//! A world owns the primary (a [`ClusterGroup`] or a stepped
//! [`PrinsEngine`]), one simulated link per replica with an
//! apply-and-acknowledge actor on the far side, and an oracle: the
//! per-LBA history of every content the primary ever gave a block.
//! Replicas may lag the primary, but at every instant each replica
//! block must hold *some* historical state — a stale-base XOR or a
//! double-applied parity produces a block that never existed on the
//! primary, which the oracle catches immediately.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;

use prins_block::{BlockDevice, BlockSize, Lba, MemDevice};
use prins_cluster::{
    ClusterConfig, ClusterError, ClusterGroup, EcConfig, EcGroup, EcRebuildReport, EcWriteOutcome,
    ReadOutcome, RendezvousPlacement, ReplicaState, ResyncStrategy, ShardedCluster, WriteOutcome,
};
use prins_core::{EngineBuilder, PrinsEngine};
use prins_ec::ReedSolomon;
use prins_net::{SimLinkCtl, SimNet, SimTransport, Transport};
use prins_obs::{EventKind, Registry, TraceConfig, TraceSink};
use prins_parity::ErasureCodec;
use prins_repl::{
    encode_ack, encode_digest_ack, is_sealed, open_frame, AckPolicy, Applied, BatchFrame, Payload,
    ReplError, ReplicaApplier, ACK, NAK, NAK_CORRUPT,
};

/// FNV-1a over a block image — the oracle's content fingerprint.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Per-LBA history of primary content hashes, oldest first.
#[derive(Debug, Default)]
pub struct History {
    states: BTreeMap<u64, Vec<u64>>,
}

impl History {
    fn seed(blocks: u64, block_size: usize) -> Self {
        let zero = content_hash(&vec![0u8; block_size]);
        Self {
            states: (0..blocks).map(|lba| (lba, vec![zero])).collect(),
        }
    }

    fn record(&mut self, lba: u64, hash: u64) {
        let chain = self.states.entry(lba).or_default();
        if chain.last() != Some(&hash) {
            chain.push(hash);
        }
    }

    fn contains(&self, lba: u64, hash: u64) -> bool {
        self.states
            .get(&lba)
            .is_some_and(|chain| chain.contains(&hash))
    }
}

/// Builds one replica behind a fresh [`SimNet`] link: a zeroed device
/// and an actor that applies every delivered frame and acknowledges it.
fn spawn_replica(
    net: &SimNet,
    idx: usize,
    block_size: BlockSize,
    blocks: u64,
    delay: Duration,
) -> (SimTransport, SimLinkCtl, Arc<MemDevice>, usize) {
    let (a, b, ctl) = net.add_link(&format!("replica{idx}"), delay);
    let device = Arc::new(MemDevice::new(block_size, blocks));
    let dev = Arc::clone(&device);
    let tr = b.clone();
    let replica_ep = b.endpoint_index();
    // The applier lives outside the actor closure: it must keep its
    // last-seen epoch and per-LBA checksum table across deliveries, or
    // every ack would regress to epoch 0 and verify-on-apply would
    // never see a stale base. Strict mode: a bit flip on the seal tag
    // itself must not let a damaged frame bypass verification.
    let mut applier = ReplicaApplier::new(dev).require_sealed(true);
    net.set_actor(
        &b,
        Box::new(move || {
            while let Ok(Some(frame)) = tr.try_recv() {
                let ack = match applier.handle(&frame) {
                    Ok(Applied::Data(_)) => encode_ack(ACK, applier.last_epoch()),
                    Ok(Applied::Digest(d)) => encode_digest_ack(applier.last_epoch(), d),
                    Ok(Applied::Strip(s)) => prins_repl::encode_strip_ack(applier.last_epoch(), &s),
                    Ok(Applied::Read(s)) => prins_repl::encode_read_ack(applier.last_epoch(), &s),
                    Err(ReplError::ChecksumMismatch { .. }) => {
                        encode_ack(NAK_CORRUPT, applier.last_epoch())
                    }
                    Err(_) => encode_ack(NAK, applier.last_epoch()),
                };
                let _ = tr.send(&ack);
            }
        }),
    );
    (a, ctl, device, replica_ep)
}

/// Extracts the LBAs a wire frame writes to (batch frames recurse).
/// Sealed envelopes are unwrapped first; a frame that fails its
/// integrity check — corrupted in flight — writes nothing, and digest
/// probes are reads, so both contribute no LBAs.
fn frame_lbas(bytes: &[u8]) -> Vec<u64> {
    if is_sealed(bytes) {
        return match open_frame(bytes) {
            Ok((_, inner)) => frame_lbas(inner),
            Err(_) => Vec::new(),
        };
    }
    if prins_repl::is_digest_request(bytes) || prins_repl::is_read_request(bytes) {
        return Vec::new();
    }
    if BatchFrame::is_batch(bytes) {
        match BatchFrame::from_bytes(bytes) {
            Ok(frame) => frame
                .payloads
                .iter()
                .flat_map(|inner| frame_lbas(inner))
                .collect(),
            Err(_) => Vec::new(),
        }
    } else {
        match Payload::from_bytes(bytes) {
            Ok(p) => vec![p.lba.index()],
            Err(_) => Vec::new(),
        }
    }
}

/// Per-LBA delivery-order + no-duplicate-delivery check over the
/// network's message log, for the given replica-side endpoints.
fn check_delivery_order(net: &SimNet, replica_eps: &[usize]) -> Result<(), String> {
    let msgs = net.message_log();
    let deliveries = net.delivery_log();
    for &ep in replica_eps {
        let mut delivered: BTreeSet<u64> = BTreeSet::new();
        let mut last_for_lba: BTreeMap<u64, u64> = BTreeMap::new();
        for &(_, id) in deliveries.iter().filter(|&&(t, _)| t == ep) {
            let msg = &msgs[id as usize];
            if !delivered.insert(id) {
                return Err(format!(
                    "duplicate delivery of data frame m{id} to endpoint {ep}"
                ));
            }
            for lba in frame_lbas(&msg.payload) {
                if let Some(&last) = last_for_lba.get(&lba) {
                    if id < last {
                        return Err(format!(
                            "per-LBA apply order violated at endpoint {ep}: \
                             m{id} (lba {lba}) delivered after m{last}"
                        ));
                    }
                }
                last_for_lba.insert(lba, id);
            }
        }
    }
    Ok(())
}

/// Checks every replica block holds some historical primary state.
fn check_historical(
    history: &History,
    blocks: u64,
    replica_devs: &[Arc<MemDevice>],
) -> Result<(), String> {
    for (idx, dev) in replica_devs.iter().enumerate() {
        for lba in 0..blocks {
            let content = dev
                .read_block_vec(Lba(lba))
                .map_err(|e| format!("replica {idx} read lba {lba}: {e}"))?;
            let hash = content_hash(&content);
            if !history.contains(lba, hash) {
                return Err(format!(
                    "replica {idx} lba {lba} holds a state the primary never had \
                     (hash {hash:#018x}) — stale-base XOR or double-applied parity"
                ));
            }
        }
    }
    Ok(())
}

fn check_identity(
    primary: &dyn BlockDevice,
    blocks: u64,
    replica_devs: &[Arc<MemDevice>],
) -> Result<(), String> {
    for (idx, dev) in replica_devs.iter().enumerate() {
        for lba in 0..blocks {
            let p = primary
                .read_block_vec(Lba(lba))
                .map_err(|e| format!("primary read lba {lba}: {e}"))?;
            let r = dev
                .read_block_vec(Lba(lba))
                .map_err(|e| format!("replica {idx} read lba {lba}: {e}"))?;
            if p != r {
                return Err(format!(
                    "replica {idx} lba {lba} differs from primary at quiescence"
                ));
            }
        }
    }
    Ok(())
}

/// Checks the recorded `state-change` event stream forms a legal
/// lifecycle walk per replica: each transition starts where the
/// previous one ended (every replica boots `online`), and every hop is
/// one the [`ReplicaState`] machine allows.
fn check_lifecycle_chain(registry: &Registry, replicas: usize) -> Result<(), String> {
    let mut position: Vec<&'static str> = vec!["online"; replicas];
    for event in registry.events().events() {
        let EventKind::StateChange { from, to } = event.kind else {
            continue;
        };
        let idx = event.replica as usize;
        if idx >= replicas {
            return Err(format!("state-change event for unknown replica {idx}"));
        }
        if position[idx] != from {
            return Err(format!(
                "replica {idx} lifecycle chain broken: event says {from}->{to} \
                 but the previous transition left it {}",
                position[idx]
            ));
        }
        let parse = |name: &str| match name {
            "online" => Some(ReplicaState::Online),
            "lagging" => Some(ReplicaState::Lagging),
            "offline" => Some(ReplicaState::Offline),
            "resyncing" => Some(ReplicaState::Resyncing),
            _ => None,
        };
        match (parse(from), parse(to)) {
            (Some(f), Some(t)) if f.can_transition(t) => {}
            _ => {
                return Err(format!(
                    "replica {idx} recorded machine-illegal transition {from}->{to}"
                ))
            }
        }
        position[idx] = to;
    }
    Ok(())
}

/// A [`ClusterGroup`] over simulated links: degraded writes, resync and
/// the full invariant set, all in virtual time.
pub struct ClusterWorld {
    net: SimNet,
    cluster: ClusterGroup<MemDevice>,
    registry: Arc<Registry>,
    trace: Arc<TraceSink>,
    ctls: Vec<SimLinkCtl>,
    primary_ends: Vec<SimTransport>,
    replica_devs: Vec<Arc<MemDevice>>,
    replica_eps: Vec<usize>,
    history: History,
    blocks: u64,
    block_size: usize,
}

impl ClusterWorld {
    /// A fresh world: zeroed primary and replicas, all links up, no
    /// faults scheduled.
    pub fn new(blocks: u64, replicas: usize, config: ClusterConfig, delay: Duration) -> Self {
        let net = SimNet::new();
        let block_size = BlockSize::kb4();
        let mut transports: Vec<Box<dyn Transport>> = Vec::new();
        let mut ctls = Vec::new();
        let mut primary_ends = Vec::new();
        let mut replica_devs = Vec::new();
        let mut replica_eps = Vec::new();
        for idx in 0..replicas {
            let (a, ctl, dev, ep) = spawn_replica(&net, idx, block_size, blocks, delay);
            primary_ends.push(a.clone());
            transports.push(Box::new(a));
            ctls.push(ctl);
            replica_devs.push(dev);
            replica_eps.push(ep);
        }
        let mut cluster = ClusterGroup::new(MemDevice::new(block_size, blocks), config, transports);
        let registry = Registry::new();
        cluster.attach_observer(Arc::clone(&registry), net.clock());
        let trace = Arc::new(TraceSink::new(TraceConfig::default()));
        cluster.attach_tracer(Arc::clone(&trace), 0, net.clock());
        Self {
            net,
            cluster,
            registry,
            trace,
            ctls,
            primary_ends,
            replica_devs,
            replica_eps,
            history: History::seed(blocks, block_size.bytes()),
            blocks,
            block_size: block_size.bytes(),
        }
    }

    /// The simulated network (trace, clock, message log).
    pub fn net(&self) -> &SimNet {
        &self.net
    }

    /// The metrics registry the cluster records into (lifecycle
    /// transitions, resync batches, ack RTTs).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The per-write trace sink (every world traces; virtual clock
    /// reads are free, so event goldens are unaffected).
    pub fn trace_sink(&self) -> &Arc<TraceSink> {
        &self.trace
    }

    /// Fault controls for replica `idx`'s link.
    pub fn ctl(&self, idx: usize) -> &SimLinkCtl {
        &self.ctls[idx]
    }

    /// The cluster under test.
    pub fn cluster(&self) -> &ClusterGroup<MemDevice> {
        &self.cluster
    }

    /// Mutable access to the cluster under test.
    pub fn cluster_mut(&mut self) -> &mut ClusterGroup<MemDevice> {
        &mut self.cluster
    }

    /// Replica `idx`'s backing device.
    pub fn replica_dev(&self, idx: usize) -> &Arc<MemDevice> {
        &self.replica_devs[idx]
    }

    /// Number of blocks per device.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Writes `data` through the cluster, recording the new content in
    /// the oracle (also on quorum loss — the primary applied it).
    pub fn write(&mut self, lba: u64, data: &[u8]) -> Result<WriteOutcome, ClusterError> {
        let res = self.cluster.write(Lba(lba), data);
        match &res {
            Ok(_) | Err(ClusterError::QuorumLost { .. }) => {
                self.history.record(lba, content_hash(data));
            }
            Err(_) => {}
        }
        res
    }

    /// Writes a deterministic sparse block derived from `(lba, tag)` —
    /// a few header bytes over zeros, so PRINS parities stay small.
    pub fn write_tag(&mut self, lba: u64, tag: u8) -> Result<WriteOutcome, ClusterError> {
        let mut data = vec![0u8; self.block_size];
        data[..8].copy_from_slice(&lba.to_le_bytes());
        data[8] = tag;
        data[9] = tag.wrapping_mul(31).wrapping_add(7);
        self.write(lba, &data)
    }

    /// Reads through the cluster (offloading to a replica when the
    /// freshness guard allows) and checks the read oracle: whatever
    /// source served it, the content must equal the primary's *current*
    /// block — an offloaded read may never observe pre-rejoin state.
    ///
    /// # Errors
    ///
    /// A stale or unhistorical read is an invariant violation (`Err`
    /// with the diagnostic); read transport failures degrade the
    /// replica and fall back, so they do not surface here.
    pub fn read_checked(&mut self, lba: u64) -> Result<ReadOutcome, String> {
        let out = self
            .cluster
            .read(Lba(lba))
            .map_err(|e| format!("read lba {lba}: {e}"))?;
        let want = self
            .cluster
            .device()
            .read_block_vec(Lba(lba))
            .map_err(|e| format!("primary read lba {lba}: {e}"))?;
        if out.data != want {
            return Err(format!(
                "offloaded read of lba {lba} from {:?} returned stale content \
                 (freshness oracle violated)",
                out.source
            ));
        }
        if !self.history.contains(lba, content_hash(&out.data)) {
            return Err(format!(
                "read of lba {lba} from {:?} returned a state the primary never had",
                out.source
            ));
        }
        Ok(out)
    }

    /// Heals every link, drains in-flight work, and resyncs every
    /// non-online replica with `strategy` until the cluster is fully
    /// online (bounded retries).
    ///
    /// # Errors
    ///
    /// If a replica cannot be brought back online.
    pub fn quiesce(&mut self, strategy: ResyncStrategy) -> Result<(), String> {
        for ctl in &self.ctls {
            ctl.clear_faults();
            if !ctl.is_up() {
                ctl.restore();
            }
        }
        self.net.run_until_idle();
        self.cluster.drain();
        for idx in 0..self.cluster.replica_count() {
            let mut attempts = 0;
            let mut last_err = String::new();
            while self.cluster.state(idx) != ReplicaState::Online {
                attempts += 1;
                if attempts > 8 {
                    return Err(format!(
                        "replica {idx} stuck {:?} after {attempts} rejoin attempts \
                         (last error: {last_err})",
                        self.cluster.state(idx)
                    ));
                }
                if matches!(
                    self.cluster.state(idx),
                    ReplicaState::Offline | ReplicaState::Lagging
                ) {
                    if let Err(e) = self.cluster.rejoin(idx, strategy) {
                        last_err = e.to_string();
                    }
                }
                if self.cluster.state(idx) == ReplicaState::Resyncing {
                    if let Err(e) = self.cluster.resync_to_completion(idx, 4) {
                        last_err = e.to_string();
                    }
                }
            }
        }
        self.cluster.drain();
        self.net.run_until_idle();
        Ok(())
    }

    /// Cheap mid-run invariant: every replica block is a historical
    /// primary state (corruption shows up here before quiescence).
    pub fn check_historical(&self) -> Result<(), String> {
        check_historical(&self.history, self.blocks, &self.replica_devs)
    }

    /// The full post-quiescence invariant set: every replica online
    /// with an empty dirty map, bit-identical to the primary, holding
    /// only historical states, with per-LBA delivery order intact and
    /// the cluster's byte accounting equal to the wire meters.
    pub fn check_invariants(&self) -> Result<(), String> {
        for idx in 0..self.cluster.replica_count() {
            let status = self.cluster.status(idx);
            if status.state != ReplicaState::Online {
                return Err(format!("replica {idx} not online: {:?}", status.state));
            }
            if status.dirty_blocks != 0 {
                return Err(format!(
                    "replica {idx} still dirty at quiescence: {} blocks",
                    status.dirty_blocks
                ));
            }
        }
        check_identity(self.cluster.device(), self.blocks, &self.replica_devs)?;
        self.check_historical()?;
        check_delivery_order(&self.net, &self.replica_eps)?;
        check_lifecycle_chain(&self.registry, self.cluster.replica_count())?;
        self.check_conservation()
    }

    /// Oracle for fault-free schedules: with no link faults scheduled,
    /// the registry must show a quiet run — no NAKs, no ack collection
    /// failures, no lifecycle transitions.
    pub fn check_quiet_run(&self) -> Result<(), String> {
        let ring = self.registry.events();
        for kind in ["nak", "ack-error", "send-error", "state-change"] {
            let n = ring.count(kind);
            if n > 0 {
                return Err(format!(
                    "fault-free schedule recorded {n} `{kind}` event(s)"
                ));
            }
        }
        Ok(())
    }

    /// Byte conservation: what the cluster booked as sent (foreground +
    /// resync + scrub probes + read requests) must equal what actually
    /// hit each wire.
    pub fn check_conservation(&self) -> Result<(), String> {
        for idx in 0..self.cluster.replica_count() {
            let status = self.cluster.status(idx);
            let sent = self.primary_ends[idx].meter().payload_bytes_sent();
            let booked = status.foreground_bytes
                + status.resync_bytes
                + status.scrub_bytes
                + status.read_bytes;
            if sent != booked {
                return Err(format!(
                    "replica {idx} byte accounting: wire saw {sent}, cluster booked {booked}"
                ));
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for ClusterWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterWorld")
            .field("blocks", &self.blocks)
            .field("replicas", &self.replica_devs.len())
            .field("net", &self.net)
            .finish()
    }
}

/// A [`ShardedCluster`] over simulated links: rendezvous placement,
/// offloaded reads, and live migration between groups, with the
/// volume-wide history oracle and per-group invariants.
///
/// Every group shares one [`SimNet`] and one registry (so a scenario's
/// event summary covers the whole volume). Devices are full-size
/// (identity addressing), the precondition migration needs.
pub struct ShardWorld {
    net: SimNet,
    sharded: ShardedCluster<MemDevice, RendezvousPlacement>,
    registry: Arc<Registry>,
    trace: Arc<TraceSink>,
    /// `ctls[g][r]` is group g, replica r's link.
    ctls: Vec<Vec<SimLinkCtl>>,
    primary_ends: Vec<Vec<SimTransport>>,
    replica_devs: Vec<Vec<Arc<MemDevice>>>,
    replica_eps: Vec<usize>,
    history: History,
    blocks: u64,
    block_size: usize,
}

impl ShardWorld {
    /// A fresh sharded world: `groups` replica groups of
    /// `replicas_per_group` each, all devices zeroed and full-size,
    /// equal-weight rendezvous placement.
    pub fn new(
        blocks: u64,
        groups: usize,
        replicas_per_group: usize,
        config: ClusterConfig,
        delay: Duration,
    ) -> Self {
        Self::with_slots(blocks, groups, replicas_per_group, config, delay, 1)
    }

    /// [`ShardWorld::new`] with `slot_blocks` contiguous LBAs hashed as
    /// one placement slot — slot-sized runs share an owner, giving
    /// migration scenarios contiguous ranges to move.
    pub fn with_slots(
        blocks: u64,
        groups: usize,
        replicas_per_group: usize,
        config: ClusterConfig,
        delay: Duration,
        slot_blocks: u64,
    ) -> Self {
        let net = SimNet::new();
        let block_size = BlockSize::kb4();
        let registry = Registry::new();
        let mut ctls = Vec::new();
        let mut primary_ends = Vec::new();
        let mut replica_devs = Vec::new();
        let mut replica_eps = Vec::new();
        let mut cluster_groups = Vec::new();
        for g in 0..groups {
            let mut transports: Vec<Box<dyn Transport>> = Vec::new();
            let mut group_ctls = Vec::new();
            let mut group_ends = Vec::new();
            let mut group_devs = Vec::new();
            for r in 0..replicas_per_group {
                let (a, ctl, dev, ep) =
                    spawn_replica(&net, g * replicas_per_group + r, block_size, blocks, delay);
                group_ends.push(a.clone());
                transports.push(Box::new(a));
                group_ctls.push(ctl);
                group_devs.push(dev);
                replica_eps.push(ep);
            }
            let mut group =
                ClusterGroup::new(MemDevice::new(block_size, blocks), config, transports);
            group.attach_observer(Arc::clone(&registry), net.clock());
            cluster_groups.push(group);
            ctls.push(group_ctls);
            primary_ends.push(group_ends);
            replica_devs.push(group_devs);
        }
        let placement = RendezvousPlacement::new(blocks, groups).with_slot_blocks(slot_blocks);
        let mut sharded = ShardedCluster::new(placement, cluster_groups);
        sharded.attach_observer(Arc::clone(&registry), net.clock());
        // One shard id per group plus the migration namespace.
        let trace = Arc::new(TraceSink::new(TraceConfig {
            shards: groups + 1,
            ..TraceConfig::default()
        }));
        sharded.attach_tracer(Arc::clone(&trace), net.clock());
        Self {
            net,
            sharded,
            registry,
            trace,
            ctls,
            primary_ends,
            replica_devs,
            replica_eps,
            history: History::seed(blocks, block_size.bytes()),
            blocks,
            block_size: block_size.bytes(),
        }
    }

    /// The simulated network.
    pub fn net(&self) -> &SimNet {
        &self.net
    }

    /// The shared metrics registry (all groups plus migration events).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The shared per-write trace sink (one shard id per group, one
    /// more for migration batches).
    pub fn trace_sink(&self) -> &Arc<TraceSink> {
        &self.trace
    }

    /// Fault controls for group `g`, replica `r`'s link.
    pub fn ctl(&self, g: usize, r: usize) -> &SimLinkCtl {
        &self.ctls[g][r]
    }

    /// The sharded cluster under test.
    pub fn sharded(&self) -> &ShardedCluster<MemDevice, RendezvousPlacement> {
        &self.sharded
    }

    /// Mutable access to the sharded cluster under test.
    pub fn sharded_mut(&mut self) -> &mut ShardedCluster<MemDevice, RendezvousPlacement> {
        &mut self.sharded
    }

    /// Number of blocks in the volume.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Writes `data` through the sharded cluster, recording the new
    /// content in the volume-wide oracle (also on quorum loss).
    pub fn write(&mut self, lba: u64, data: &[u8]) -> Result<WriteOutcome, ClusterError> {
        let res = self.sharded.write(Lba(lba), data);
        match &res {
            Ok(_) | Err(ClusterError::QuorumLost { .. }) => {
                self.history.record(lba, content_hash(data));
            }
            Err(_) => {}
        }
        res
    }

    /// Writes a deterministic sparse block derived from `(lba, tag)`.
    pub fn write_tag(&mut self, lba: u64, tag: u8) -> Result<WriteOutcome, ClusterError> {
        let mut data = vec![0u8; self.block_size];
        data[..8].copy_from_slice(&lba.to_le_bytes());
        data[8] = tag;
        data[9] = tag.wrapping_mul(31).wrapping_add(7);
        self.write(lba, &data)
    }

    /// Reads through the sharded cluster and checks the read oracle:
    /// the content must equal the owning group's *current* primary
    /// block, and be a state the volume actually had.
    ///
    /// # Errors
    ///
    /// A stale or unhistorical read is an invariant violation.
    pub fn read_checked(&mut self, lba: u64) -> Result<ReadOutcome, String> {
        let out = self
            .sharded
            .read(Lba(lba))
            .map_err(|e| format!("read lba {lba}: {e}"))?;
        let owner = self.sharded.owner(Lba(lba));
        let want = self
            .sharded
            .group(owner)
            .device()
            .read_block_vec(Lba(lba))
            .map_err(|e| format!("group {owner} primary read lba {lba}: {e}"))?;
        if out.data != want {
            return Err(format!(
                "offloaded read of lba {lba} (group {owner}, source {:?}) returned \
                 stale content (freshness oracle violated)",
                out.source
            ));
        }
        if !self.history.contains(lba, content_hash(&out.data)) {
            return Err(format!(
                "read of lba {lba} returned a state the volume never had"
            ));
        }
        Ok(out)
    }

    /// Heals every link, drains in-flight work, and resyncs every
    /// non-online replica of every group with `strategy`.
    ///
    /// # Errors
    ///
    /// If a replica cannot be brought back online.
    pub fn quiesce(&mut self, strategy: ResyncStrategy) -> Result<(), String> {
        for group_ctls in &self.ctls {
            for ctl in group_ctls {
                ctl.clear_faults();
                if !ctl.is_up() {
                    ctl.restore();
                }
            }
        }
        self.net.run_until_idle();
        for g in 0..self.sharded.group_count() {
            let cluster = self.sharded.group_mut(g);
            cluster.drain();
            for idx in 0..cluster.replica_count() {
                let mut attempts = 0;
                let mut last_err = String::new();
                while cluster.state(idx) != ReplicaState::Online {
                    attempts += 1;
                    if attempts > 8 {
                        return Err(format!(
                            "group {g} replica {idx} stuck {:?} after {attempts} rejoin \
                             attempts (last error: {last_err})",
                            cluster.state(idx)
                        ));
                    }
                    if matches!(
                        cluster.state(idx),
                        ReplicaState::Offline | ReplicaState::Lagging
                    ) {
                        if let Err(e) = cluster.rejoin(idx, strategy) {
                            last_err = e.to_string();
                        }
                    }
                    if cluster.state(idx) == ReplicaState::Resyncing {
                        if let Err(e) = cluster.resync_to_completion(idx, 4) {
                            last_err = e.to_string();
                        }
                    }
                }
            }
            self.sharded.group_mut(g).drain();
        }
        self.net.run_until_idle();
        Ok(())
    }

    /// Cheap mid-run invariant: every replica block of every group is a
    /// state the volume actually had.
    pub fn check_historical(&self) -> Result<(), String> {
        for (g, devs) in self.replica_devs.iter().enumerate() {
            check_historical(&self.history, self.blocks, devs)
                .map_err(|e| format!("group {g}: {e}"))?;
        }
        Ok(())
    }

    /// The full post-quiescence invariant set, per group: every replica
    /// online and clean, bit-identical to its group primary, holding
    /// only historical volume states, delivery order intact, byte
    /// accounting equal to the wire meters.
    ///
    /// (The lifecycle-chain check is per-[`ClusterWorld`]: with all
    /// groups sharing one registry, replica indices collide across
    /// groups, so it is not applicable here.)
    pub fn check_invariants(&self) -> Result<(), String> {
        for g in 0..self.sharded.group_count() {
            let cluster = self.sharded.group(g);
            for idx in 0..cluster.replica_count() {
                let status = cluster.status(idx);
                if status.state != ReplicaState::Online {
                    return Err(format!(
                        "group {g} replica {idx} not online: {:?}",
                        status.state
                    ));
                }
                if status.dirty_blocks != 0 {
                    return Err(format!(
                        "group {g} replica {idx} still dirty at quiescence: {} blocks",
                        status.dirty_blocks
                    ));
                }
            }
            check_identity(cluster.device(), self.blocks, &self.replica_devs[g])
                .map_err(|e| format!("group {g}: {e}"))?;
        }
        self.check_historical()?;
        check_delivery_order(&self.net, &self.replica_eps)?;
        self.check_conservation()
    }

    /// Byte conservation per group and replica: booked bytes
    /// (foreground + resync + scrub + reads) equal the wire meter.
    pub fn check_conservation(&self) -> Result<(), String> {
        for g in 0..self.sharded.group_count() {
            let cluster = self.sharded.group(g);
            for idx in 0..cluster.replica_count() {
                let status = cluster.status(idx);
                let sent = self.primary_ends[g][idx].meter().payload_bytes_sent();
                let booked = status.foreground_bytes
                    + status.resync_bytes
                    + status.scrub_bytes
                    + status.read_bytes;
                if sent != booked {
                    return Err(format!(
                        "group {g} replica {idx} byte accounting: wire saw {sent}, \
                         cluster booked {booked}"
                    ));
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for ShardWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardWorld")
            .field("blocks", &self.blocks)
            .field("groups", &self.replica_devs.len())
            .field("net", &self.net)
            .finish()
    }
}

/// Configuration for [`EngineWorld`].
#[derive(Clone, Copy, Debug)]
pub struct EngineWorldConfig {
    /// Replica count.
    pub replicas: usize,
    /// Blocks per device.
    pub blocks: u64,
    /// Enable XOR-fold coalescing.
    pub coalesce: bool,
    /// Frames batched per wire message (1 = off).
    pub batch_frames: usize,
    /// In-flight frames allowed per lane.
    pub ack_window: usize,
    /// Symmetric per-frame link delay (virtual).
    pub delay: Duration,
    /// Drive replication with the adaptive policy engine (default
    /// config) instead of plain PRINS; `coalesce`/`batch_frames` above
    /// become the `Mixed`-phase baseline it retunes from.
    pub adaptive: bool,
}

impl Default for EngineWorldConfig {
    fn default() -> Self {
        Self {
            replicas: 2,
            blocks: 8,
            coalesce: false,
            batch_frames: 1,
            ack_window: 4,
            delay: Duration::from_micros(100),
            adaptive: false,
        }
    }
}

/// A stepped [`PrinsEngine`] over simulated links — the foreground
/// pipeline (coalescing, batching, windowed acks) in virtual time.
///
/// The engine has no resync layer, so a fault here is *permanent* lag:
/// the invariants are prefix-consistency (every replica block is a
/// historical state — behind is fine, garbage is not), per-LBA send
/// order, and byte conservation; bit-identity holds only after a flush
/// that saw no faults.
pub struct EngineWorld {
    net: SimNet,
    engine: PrinsEngine,
    registry: Arc<Registry>,
    trace: Arc<TraceSink>,
    primary: Arc<MemDevice>,
    ctls: Vec<SimLinkCtl>,
    primary_ends: Vec<SimTransport>,
    replica_devs: Vec<Arc<MemDevice>>,
    replica_eps: Vec<usize>,
    history: History,
    blocks: u64,
    block_size: usize,
}

impl EngineWorld {
    /// Builds the world: zeroed devices, manual stepping, virtual clock.
    pub fn new(cfg: EngineWorldConfig) -> Self {
        let net = SimNet::new();
        let block_size = BlockSize::kb4();
        let primary = Arc::new(MemDevice::new(block_size, cfg.blocks));
        let registry = Registry::new();
        let mut builder = EngineBuilder::new(Arc::clone(&primary) as Arc<dyn BlockDevice>)
            .manual_stepping(true)
            .observe(Arc::clone(&registry))
            .clock(net.clock())
            .flight_recorder(TraceConfig::default())
            .trace_sends(true)
            .coalesce(cfg.coalesce)
            .batch_frames(cfg.batch_frames)
            .ack_policy(AckPolicy::Window(cfg.ack_window))
            .ack_timeout(Duration::from_millis(50));
        if cfg.adaptive {
            builder = builder.adaptive(prins_policy::PolicyConfig::default());
        }
        let mut ctls = Vec::new();
        let mut primary_ends = Vec::new();
        let mut replica_devs = Vec::new();
        let mut replica_eps = Vec::new();
        for idx in 0..cfg.replicas {
            let (a, ctl, dev, ep) = spawn_replica(&net, idx, block_size, cfg.blocks, cfg.delay);
            primary_ends.push(a.clone());
            builder = builder.replica(Box::new(a));
            ctls.push(ctl);
            replica_devs.push(dev);
            replica_eps.push(ep);
        }
        let engine = builder.build();
        let trace = Arc::clone(engine.trace_sink().expect("flight recorder enabled above"));
        Self {
            net,
            engine,
            registry,
            trace,
            primary,
            ctls,
            primary_ends,
            replica_devs,
            replica_eps,
            history: History::seed(cfg.blocks, block_size.bytes()),
            blocks: cfg.blocks,
            block_size: block_size.bytes(),
        }
    }

    /// The simulated network.
    pub fn net(&self) -> &SimNet {
        &self.net
    }

    /// Fault controls for replica `idx`'s link.
    pub fn ctl(&self, idx: usize) -> &SimLinkCtl {
        &self.ctls[idx]
    }

    /// The engine under test.
    pub fn engine(&self) -> &PrinsEngine {
        &self.engine
    }

    /// The metrics registry the engine records into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The engine's per-write trace sink (flight recorder).
    pub fn trace_sink(&self) -> &Arc<TraceSink> {
        &self.trace
    }

    /// Writes a deterministic sparse block derived from `(lba, tag)`.
    pub fn write_tag(&mut self, lba: u64, tag: u8) -> Result<(), String> {
        let mut data = vec![0u8; self.block_size];
        data[..8].copy_from_slice(&lba.to_le_bytes());
        data[8] = tag;
        data[9] = tag.wrapping_mul(31).wrapping_add(7);
        self.engine
            .write_block(Lba(lba), &data)
            .map_err(|e| format!("write lba {lba}: {e}"))?;
        self.history.record(lba, content_hash(&data));
        Ok(())
    }

    /// Writes a dense block derived from `(lba, tag)`: every byte
    /// changes between tags and the xorshift stream defeats both the
    /// compressibility probe and LZSS — the churn shape, as opposed to
    /// [`write_tag`](Self::write_tag)'s small deltas.
    pub fn write_fill(&mut self, lba: u64, tag: u8) -> Result<(), String> {
        let mut data = vec![0u8; self.block_size];
        let mut state = ((lba << 8) | u64::from(tag)).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for b in data.iter_mut() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *b = (state >> 32) as u8;
        }
        self.engine
            .write_block(Lba(lba), &data)
            .map_err(|e| format!("write lba {lba}: {e}"))?;
        self.history.record(lba, content_hash(&data));
        Ok(())
    }

    /// Drives one pipeline round (see [`PrinsEngine::step`]).
    pub fn step(&self) -> bool {
        self.engine.step()
    }

    /// Replication barrier; the error carries any lane failure since
    /// the last flush.
    pub fn flush(&self) -> Result<(), String> {
        self.engine.flush().map_err(|e| e.to_string())
    }

    /// Prefix-consistency: every replica block is a historical state.
    pub fn check_historical(&self) -> Result<(), String> {
        check_historical(&self.history, self.blocks, &self.replica_devs)
    }

    /// Bit-identity with the primary — call after a clean flush.
    pub fn check_identity(&self) -> Result<(), String> {
        check_identity(&*self.primary, self.blocks, &self.replica_devs)
    }

    /// Per-LBA ordering at two levels: the engine's own send logs
    /// (sequence numbers monotonic per LBA on every lane) and the
    /// network's delivery log (no duplicates, per-LBA delivery order).
    pub fn check_order(&self) -> Result<(), String> {
        for (lane, log) in self.engine.send_logs().iter().enumerate() {
            let mut last: BTreeMap<u64, u64> = BTreeMap::new();
            for &(lba, seq) in log {
                if let Some(&prev) = last.get(&lba.index()) {
                    if seq <= prev {
                        return Err(format!(
                            "lane {lane} sent lba {} seq {seq} after seq {prev}",
                            lba.index()
                        ));
                    }
                }
                last.insert(lba.index(), seq);
            }
        }
        check_delivery_order(&self.net, &self.replica_eps)
    }

    /// Cross-checks the registry against the engine's own counters —
    /// every accepted write was admitted or folded, every wire frame
    /// has a `send` event, every admitted write an encode sample, and
    /// the ack-RTT histogram holds one sample per ack event. Call at
    /// quiescence (after a flush).
    pub fn check_obs(&self) -> Result<(), String> {
        let ring = self.registry.events();
        let stats = self.engine.stats();
        let admits = ring.count("admit");
        let folded = ring.count("coalesce");
        if admits + folded != stats.writes {
            return Err(format!(
                "obs: {admits} admit + {folded} coalesce events for {} accepted writes",
                stats.writes
            ));
        }
        let sends: u64 = self.engine.lane_stats().iter().map(|l| l.sends).sum();
        if ring.count("send") != sends {
            return Err(format!(
                "obs: {} send events for {sends} lane transmissions",
                ring.count("send")
            ));
        }
        let snap = self.registry.snapshot();
        let acks = ring.count("ack-ok") + ring.count("nak") + ring.count("ack-error");
        let rtt = snap
            .histograms
            .get("stage_ack_rtt_nanos")
            .map_or(0, |h| h.count);
        if rtt != acks {
            return Err(format!("obs: {rtt} ack-RTT samples for {acks} ack events"));
        }
        let encode = snap
            .histograms
            .get("stage_encode_nanos")
            .map_or(0, |h| h.count);
        if encode != admits {
            return Err(format!(
                "obs: {encode} encode samples for {admits} admitted writes"
            ));
        }
        Ok(())
    }

    /// Byte conservation: the engine's `replicated_payload_bytes` must
    /// equal the sum of payload bytes that actually hit the wires.
    pub fn check_conservation(&self) -> Result<(), String> {
        let booked = self.engine.stats().replicated_payload_bytes;
        let sent: u64 = self
            .primary_ends
            .iter()
            .map(|t| t.meter().payload_bytes_sent())
            .sum();
        if booked != sent {
            return Err(format!(
                "engine booked {booked} replicated payload bytes, wires saw {sent}"
            ));
        }
        Ok(())
    }
}

impl std::fmt::Debug for EngineWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineWorld")
            .field("blocks", &self.blocks)
            .field("replicas", &self.replica_devs.len())
            .field("net", &self.net)
            .finish()
    }
}

/// Builds one strip-holding node behind a fresh [`SimNet`] link: a
/// zeroed `stripes`-block device and an actor running the stock apply
/// loop with a Reed–Solomon codec applier in strict sealed mode — the
/// same loop mirroring replicas run, answering strip deltas, strip
/// reads, and everything else.
fn spawn_strip_node(
    net: &SimNet,
    name: &str,
    stripes: u64,
    delay: Duration,
) -> (SimTransport, SimLinkCtl, Arc<MemDevice>) {
    let (a, b, ctl) = net.add_link(name, delay);
    let device = Arc::new(MemDevice::new(BlockSize::kb4(), stripes));
    let dev = Arc::clone(&device);
    let tr = b.clone();
    let mut applier = ReplicaApplier::new(dev)
        .with_codec(Box::new(ReedSolomon::k4m2()))
        .require_sealed(true);
    net.set_actor(
        &b,
        Box::new(move || {
            while let Ok(Some(frame)) = tr.try_recv() {
                let ack = match applier.handle(&frame) {
                    Ok(Applied::Data(_)) => encode_ack(ACK, applier.last_epoch()),
                    Ok(Applied::Digest(d)) => encode_digest_ack(applier.last_epoch(), d),
                    Ok(Applied::Strip(s)) => prins_repl::encode_strip_ack(applier.last_epoch(), &s),
                    Ok(Applied::Read(s)) => prins_repl::encode_read_ack(applier.last_epoch(), &s),
                    Err(ReplError::ChecksumMismatch { .. }) => {
                        encode_ack(NAK_CORRUPT, applier.last_epoch())
                    }
                    Err(_) => encode_ack(NAK, applier.last_epoch()),
                };
                let _ = tr.send(&ack);
            }
        }),
    );
    (a, ctl, device)
}

/// An [`EcGroup`] over simulated links: k-of-n strip placement, sparse
/// delta parity updates, node loss and repair-bandwidth-accounted
/// rebuild, all in virtual time. Fixed at the paper's `k = 4, m = 2`
/// Reed–Solomon geometry.
///
/// Two invariants anchor the EC scenarios:
///
/// 1. **Strips encode the logical image** — at full health, every
///    node's strip is byte-identical to the systematic encoding of the
///    primary's logical volume
///    ([`check_strips_encode_logical`](Self::check_strips_encode_logical)).
/// 2. **Decode matches the oracle** — every logical block decoded off
///    the wire (erased columns reconstructed) equals the primary image
///    and is a state the per-LBA history oracle has seen
///    ([`check_decode_matches_oracle`](Self::check_decode_matches_oracle)).
pub struct EcWorld {
    net: SimNet,
    group: EcGroup<MemDevice, ReedSolomon>,
    registry: Arc<Registry>,
    trace: Arc<TraceSink>,
    ctls: Vec<SimLinkCtl>,
    node_devs: Vec<Arc<MemDevice>>,
    history: History,
    blocks: u64,
    block_size: usize,
    delay: Duration,
    replacements: usize,
}

impl EcWorld {
    /// A fresh world: zeroed primary and strip nodes, all links up.
    pub fn new(stripes: u64, delay: Duration) -> Self {
        let net = SimNet::new();
        let codec = ReedSolomon::k4m2();
        let block_size = BlockSize::kb4();
        let mut transports: Vec<Box<dyn Transport>> = Vec::new();
        let mut ctls = Vec::new();
        let mut node_devs = Vec::new();
        for idx in 0..codec.total_strips() {
            let (a, ctl, dev) = spawn_strip_node(&net, &format!("node{idx}"), stripes, delay);
            transports.push(Box::new(a));
            ctls.push(ctl);
            node_devs.push(dev);
        }
        let blocks = stripes * codec.data_strips() as u64;
        let logical = MemDevice::new(block_size, blocks);
        let config = EcConfig {
            ack_timeout: Duration::from_millis(50),
        };
        let mut group = EcGroup::new(logical, codec, config, transports);
        let registry = Registry::new();
        group.attach_observer(Arc::clone(&registry), net.clock());
        let trace = Arc::new(TraceSink::new(TraceConfig::default()));
        group.attach_tracer(Arc::clone(&trace), 0, net.clock());
        Self {
            net,
            group,
            registry,
            trace,
            ctls,
            node_devs,
            history: History::seed(blocks, block_size.bytes()),
            blocks,
            block_size: block_size.bytes(),
            delay,
            replacements: 0,
        }
    }

    /// The simulated network (trace, clock, message log).
    pub fn net(&self) -> &SimNet {
        &self.net
    }

    /// The metrics registry the group records into (strip writes,
    /// parity-update and rebuild bytes, `ec-rebuild` events).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The per-write trace sink (strip fan-out traces).
    pub fn trace_sink(&self) -> &Arc<TraceSink> {
        &self.trace
    }

    /// The erasure-coded group under test.
    pub fn group(&self) -> &EcGroup<MemDevice, ReedSolomon> {
        &self.group
    }

    /// Mutable access to the group under test.
    pub fn group_mut(&mut self) -> &mut EcGroup<MemDevice, ReedSolomon> {
        &mut self.group
    }

    /// Logical blocks in the volume.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Writes a deterministic sparse block derived from `(lba, tag)`
    /// through the group, recording the content in the oracle.
    ///
    /// # Errors
    ///
    /// Propagates the group's write error.
    pub fn write_tag(&mut self, lba: u64, tag: u8) -> Result<EcWriteOutcome, ClusterError> {
        let mut data = vec![0u8; self.block_size];
        data[..8].copy_from_slice(&lba.to_le_bytes());
        data[8] = tag;
        data[9] = tag.wrapping_mul(31).wrapping_add(7);
        let res = self.group.write(Lba(lba), &data);
        if res.is_ok() {
            self.history.record(lba, content_hash(&data));
        }
        res
    }

    /// Kills node `idx`: the group stops routing strips to it and its
    /// link is severed — a write that tried anyway would time out.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownReplica`] for a bad index.
    pub fn fail_node(&mut self, idx: usize) -> Result<(), ClusterError> {
        self.group.mark_down(idx)?;
        self.ctls[idx].sever();
        Ok(())
    }

    /// Swaps a fresh node (wiped device, new applier, new link) into
    /// slot `idx` and rebuilds its strips from `k` survivors.
    ///
    /// # Errors
    ///
    /// The rebuild's transport or reconstruction failure.
    pub fn replace_and_rebuild(&mut self, idx: usize) -> Result<EcRebuildReport, String> {
        self.replacements += 1;
        let name = format!("node{idx}-r{}", self.replacements);
        let (a, ctl, dev) = spawn_strip_node(&self.net, &name, self.group.stripes(), self.delay);
        self.group
            .replace_node(idx, Box::new(a))
            .map_err(|e| format!("replace node {idx}: {e}"))?;
        self.ctls[idx] = ctl;
        self.node_devs[idx] = dev;
        self.group
            .rebuild(idx)
            .map_err(|e| format!("rebuild node {idx}: {e}"))
    }

    /// Byte-exact strip invariant: every node's strip equals the
    /// systematic encoding of the primary's logical image. Call at
    /// full health — a down node's strips are allowed to lag.
    ///
    /// # Errors
    ///
    /// The first diverging strip.
    pub fn check_strips_encode_logical(&self) -> Result<(), String> {
        let k = self.group.placement().k;
        let codec = ReedSolomon::k4m2();
        for stripe in 0..self.group.stripes() {
            let mut data = Vec::with_capacity(k);
            for col in 0..k {
                data.push(
                    self.group
                        .device()
                        .read_block_vec(Lba(stripe * k as u64 + col as u64))
                        .map_err(|e| format!("primary read stripe {stripe} col {col}: {e}"))?,
                );
            }
            let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
            let parity = codec
                .encode(&refs)
                .map_err(|e| format!("encode stripe {stripe}: {e}"))?;
            for role in 0..self.group.placement().n() {
                let want = if role < k {
                    &data[role]
                } else {
                    &parity[role - k]
                };
                let node = self.group.placement().node_for(stripe, role);
                let got = self.node_devs[node]
                    .read_block_vec(Lba(stripe))
                    .map_err(|e| format!("node {node} read stripe {stripe}: {e}"))?;
                if &got != want {
                    return Err(format!(
                        "stripe {stripe} role {role}: node {node}'s strip diverges \
                         from encode(logical)"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Decodes every logical block off the wire (reconstructing erased
    /// columns) and checks it equals the primary image *and* is a
    /// state the history oracle has seen — the rebuild integrity
    /// proof. Works degraded: up to `m` nodes may be down.
    ///
    /// # Errors
    ///
    /// The first mismatching or unhistorical block.
    pub fn check_decode_matches_oracle(&mut self) -> Result<(), String> {
        for lba in 0..self.blocks {
            let want = self
                .group
                .device()
                .read_block_vec(Lba(lba))
                .map_err(|e| format!("primary read lba {lba}: {e}"))?;
            let got = self
                .group
                .decode_logical(Lba(lba))
                .map_err(|e| format!("decode lba {lba}: {e}"))?;
            if got != want {
                return Err(format!(
                    "lba {lba}: decoded block differs from the primary image"
                ));
            }
            let hash = content_hash(&got);
            if !self.history.contains(lba, hash) {
                return Err(format!(
                    "lba {lba}: decoded a state the primary never held (hash {hash:#018x})"
                ));
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for EcWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EcWorld")
            .field("blocks", &self.blocks)
            .field("nodes", &self.node_devs.len())
            .field("net", &self.net)
            .finish()
    }
}
