//! Seeded scenario fuzzer: a `u64` seed deterministically expands into
//! a workload plus fault schedule, runs against a [`ClusterWorld`] with
//! the per-op and post-quiescence invariants, and — on failure — greedy
//! chunk removal shrinks the schedule to a minimal reproducing trace.
//!
//! Same seed, same binary → byte-identical event trace and verdict, so
//! a failing seed printed by CI replays exactly on a developer machine:
//!
//! ```text
//! cargo run -p prins-sim --bin sim-replay -- 0xdeadbeef
//! ```
//!
//! Generation is constrained to schedules the protocol *claims* to
//! survive:
//!
//! * Bit flips on data frames keep the ack stream aligned (the replica
//!   still answers, with `NAK_CORRUPT`), but are generated only for the
//!   same closed-loop, surplus-free schedules as silent data drops —
//!   the fuzzer itself proved both halves of that constraint. Inside a
//!   pipelined window a *later* same-LBA frame can be sent — and
//!   applied against a base missing the damaged frame's update — before
//!   the NAK is collected, transiently violating the per-op historical
//!   oracle (repaired as soon as the NAK surfaces). And a surplus
//!   duplicated ack credits the rejected frame outright, exactly as it
//!   would a silently dropped one. In the closed-loop, surplus-free
//!   regime the NAK lands before anything else is sent, so corruption
//!   is always detected before it can skew a base.
//! * Duplication and reordering are injected on the ack direction only
//!   — duplicating a PRINS data frame double-applies a parity; no
//!   storage protocol survives a network that rewrites payload
//!   streams.
//! * Silent *data*-frame drops are generated only for `ack_window == 1`
//!   schedules without duplicated acks. The harness itself proved the
//!   limitation (seeds minimize to three ops): acks carry no frame
//!   identity, so inside an optimistic window — or against a stray
//!   surplus ack — the FIFO credit stream shifts one ahead and the
//!   *next* ack silently credits the lost write. The deployed fault
//!   model is a reliable session (iSCSI over TCP) where loss surfaces
//!   as disconnection; severs model that and are generated freely, as
//!   are ack drops (the dropped ack's write was applied, so
//!   misattribution only shuffles credit among applied writes and the
//!   final timeout lands safely in the uncertain-dirty set).

use std::time::Duration;

use prins_cluster::{ClusterConfig, ReplicaState, ResyncStrategy};
use prins_net::Dir;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::world::ClusterWorld;

/// One step of a generated schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimOp {
    /// Foreground write of a deterministic block derived from
    /// `(lba, tag)`.
    Write {
        /// Target block.
        lba: u64,
        /// Content discriminator.
        tag: u8,
    },
    /// Cut a replica's link.
    Sever {
        /// Replica index.
        link: usize,
    },
    /// Bring a replica's link back.
    Restore {
        /// Replica index.
        link: usize,
    },
    /// Flip one bit in each of the next `n` data frames toward a
    /// replica. Unlike a drop, the damaged frame still arrives and
    /// still draws a response (`NAK_CORRUPT`), so the ack stream stays
    /// aligned — the seal must detect every flip and resync must
    /// repair it. Generated only at `ack_window == 1` (see the module
    /// docs for why pipelined windows can transiently skew a base).
    CorruptData {
        /// Replica index.
        link: usize,
        /// Frames to damage.
        n: u32,
    },
    /// Silently drop the next `n` data frames toward a replica.
    DropData {
        /// Replica index.
        link: usize,
        /// Frames to drop.
        n: u32,
    },
    /// Silently drop the next `n` acknowledgements from a replica.
    DropAcks {
        /// Replica index.
        link: usize,
        /// Frames to drop.
        n: u32,
    },
    /// Duplicate the next acknowledgement from a replica.
    DupAck {
        /// Replica index.
        link: usize,
    },
    /// Reorder the next two acknowledgements from a replica.
    ReorderAcks {
        /// Replica index.
        link: usize,
    },
    /// Collect all in-flight acknowledgements.
    Drain,
    /// Attempt a parity-log rejoin plus a bounded resync step.
    Rejoin {
        /// Replica index.
        link: usize,
    },
    /// Prune the primary's parity log up to the current sequence.
    Prune,
}

/// A fully expanded fuzz case: topology plus schedule.
#[derive(Clone, Debug)]
pub struct FuzzCase {
    /// The seed it was generated from.
    pub seed: u64,
    /// Replica count (2 or 3).
    pub replicas: usize,
    /// Blocks per device.
    pub blocks: u64,
    /// Foreground ack window.
    pub ack_window: usize,
    /// The schedule.
    pub ops: Vec<SimOp>,
}

/// Outcome of one case: the verdict plus the full deterministic event
/// trace (network trace + verdict line).
#[derive(Clone, Debug)]
pub struct RunReport {
    /// `Ok` or the first violated invariant.
    pub verdict: Result<(), String>,
    /// Byte-identical across runs of the same case.
    pub trace: String,
}

/// A failing seed with its shrunk schedule.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// The failing seed.
    pub seed: u64,
    /// The violated invariant.
    pub message: String,
    /// Greedily minimized schedule that still reproduces a failure.
    pub minimized: Vec<SimOp>,
}

/// Expands `seed` into a case. Deterministic: the schedule depends on
/// nothing but the seed.
pub fn generate(seed: u64) -> FuzzCase {
    let mut rng = StdRng::seed_from_u64(seed);
    let replicas = rng.random_range(2usize..=3);
    let blocks = 8u64;
    let ack_window = [1usize, 2, 4][rng.random_range(0usize..3)];
    // Silent data loss is only attributable with a closed-loop window
    // and a surplus-free ack stream (see module docs): such schedules
    // drop data frames but never duplicate acks; all others vice versa.
    let data_drops = ack_window == 1 && rng.random_bool(0.5);
    let n_ops = rng.random_range(24usize..=64);
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        let link = rng.random_range(0usize..replicas);
        let roll = rng.random_range(0u32..100);
        ops.push(match roll {
            0..=49 => SimOp::Write {
                lba: rng.random_range(0..blocks),
                tag: rng.random_range(0u32..=255) as u8,
            },
            // Bit flips keep FIFO credit aligned (the damaged frame
            // still draws a NAK_CORRUPT) but need the closed-loop,
            // surplus-free schedules — see the module docs.
            50..=54 => {
                let n = rng.random_range(1u32..=2);
                if data_drops {
                    SimOp::CorruptData { link, n }
                } else {
                    SimOp::DropAcks { link, n }
                }
            }
            55..=62 => SimOp::Sever { link },
            63..=72 => SimOp::Restore { link },
            73..=78 => {
                let n = rng.random_range(1u32..=2);
                if data_drops {
                    SimOp::DropData { link, n }
                } else {
                    SimOp::DropAcks { link, n }
                }
            }
            79..=84 => SimOp::DropAcks {
                link,
                n: rng.random_range(1u32..=2),
            },
            85..=88 => {
                if data_drops {
                    SimOp::ReorderAcks { link }
                } else {
                    SimOp::DupAck { link }
                }
            }
            89..=91 => SimOp::ReorderAcks { link },
            92..=94 => SimOp::Drain,
            95..=97 => SimOp::Rejoin { link },
            _ => SimOp::Prune,
        });
    }
    FuzzCase {
        seed,
        replicas,
        blocks,
        ack_window,
        ops,
    }
}

fn apply(w: &mut ClusterWorld, op: SimOp, replicas: usize) {
    match op {
        SimOp::Write { lba, tag } => {
            let _ = w.write_tag(lba, tag);
        }
        SimOp::Sever { link } => {
            let ctl = w.ctl(link % replicas);
            if ctl.is_up() {
                ctl.sever();
            }
        }
        SimOp::Restore { link } => {
            let ctl = w.ctl(link % replicas);
            if !ctl.is_up() {
                ctl.restore();
            }
        }
        SimOp::CorruptData { link, n } => w.ctl(link % replicas).corrupt_next(Dir::AtoB, n),
        SimOp::DropData { link, n } => w.ctl(link % replicas).drop_next(Dir::AtoB, n),
        SimOp::DropAcks { link, n } => w.ctl(link % replicas).drop_next(Dir::BtoA, n),
        SimOp::DupAck { link } => w.ctl(link % replicas).dup_next(Dir::BtoA, 1),
        SimOp::ReorderAcks { link } => w.ctl(link % replicas).reorder_next(Dir::BtoA),
        SimOp::Drain => {
            w.cluster_mut().drain();
        }
        SimOp::Rejoin { link } => {
            let r = link % replicas;
            if w.cluster().state(r) != ReplicaState::Online && w.ctl(r).is_up() {
                let _ = w.cluster_mut().rejoin(r, ResyncStrategy::ParityLog);
                let _ = w.cluster_mut().resync_step(r, 2);
            }
        }
        SimOp::Prune => {
            let log = w.cluster().log();
            log.prune(log.current_seq());
        }
    }
}

/// Runs one case to quiescence: the mid-run historical invariant after
/// every op, then heal + resync + the full invariant set.
pub fn run_case(case: &FuzzCase) -> RunReport {
    let config = ClusterConfig {
        ack_timeout: Duration::from_millis(50),
        write_quorum: 0,
        offline_after: 2,
        ack_window: case.ack_window,
        ..Default::default()
    };
    let mut w = ClusterWorld::new(
        case.blocks,
        case.replicas,
        config,
        Duration::from_micros(200),
    );
    let mut verdict = Ok(());
    for (i, &op) in case.ops.iter().enumerate() {
        apply(&mut w, op, case.replicas);
        if let Err(e) = w.check_historical() {
            verdict = Err(format!("after op {i} ({op:?}): {e}"));
            break;
        }
    }
    if verdict.is_ok() {
        verdict = w
            .quiesce(ResyncStrategy::ParityLog)
            .and_then(|()| w.check_invariants());
    }
    // Observability oracle: a schedule that injected no link faults
    // must leave a quiet registry — any NAK, ack failure, or lifecycle
    // transition on a healthy network is a bug in the stack (or in the
    // instrumentation claiming one happened).
    let fault_free = case
        .ops
        .iter()
        .all(|op| matches!(op, SimOp::Write { .. } | SimOp::Drain | SimOp::Prune));
    if verdict.is_ok() && fault_free {
        verdict = w.check_quiet_run();
    }
    let mut trace = w.net().trace().join("\n");
    trace.push_str("\nevents: ");
    trace.push_str(&w.registry().snapshot().event_summary_json());
    trace.push_str("\nverdict: ");
    match &verdict {
        Ok(()) => trace.push_str("ok"),
        Err(e) => trace.push_str(e),
    }
    RunReport { verdict, trace }
}

/// Expands and runs one seed.
pub fn run_seed(seed: u64) -> RunReport {
    run_case(&generate(seed))
}

/// Greedy chunk-removal shrink: repeatedly delete op ranges that keep
/// the case failing, halving the chunk size down to single ops.
pub fn minimize(case: &FuzzCase) -> FuzzCase {
    let still_fails = |ops: &[SimOp]| {
        let candidate = FuzzCase {
            ops: ops.to_vec(),
            ..case.clone()
        };
        run_case(&candidate).verdict.is_err()
    };
    let mut ops = case.ops.clone();
    let mut chunk = (ops.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < ops.len() {
            let mut candidate = ops.clone();
            candidate.drain(i..(i + chunk).min(candidate.len()));
            if still_fails(&candidate) {
                ops = candidate;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    FuzzCase {
        ops,
        ..case.clone()
    }
}

/// Runs `seed`; on failure, shrinks the schedule and reports it.
///
/// # Errors
///
/// The violated invariant plus the minimized schedule.
pub fn fuzz_seed(seed: u64) -> Result<(), FuzzFailure> {
    let case = generate(seed);
    match run_case(&case).verdict {
        Ok(()) => Ok(()),
        Err(message) => {
            let minimized = minimize(&case);
            let message = run_case(&minimized).verdict.err().unwrap_or(message);
            Err(FuzzFailure {
                seed,
                message,
                minimized: minimized.ops,
            })
        }
    }
}
