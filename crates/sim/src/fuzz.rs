//! Seeded scenario fuzzer: a `u64` seed deterministically expands into
//! a workload plus fault schedule, runs against a [`ClusterWorld`] with
//! the per-op and post-quiescence invariants, and — on failure — greedy
//! chunk removal shrinks the schedule to a minimal reproducing trace.
//!
//! Same seed, same binary → byte-identical event trace and verdict, so
//! a failing seed printed by CI replays exactly on a developer machine:
//!
//! ```text
//! cargo run -p prins-sim --bin sim-replay -- 0xdeadbeef
//! ```
//!
//! Generation is constrained to schedules the protocol *claims* to
//! survive:
//!
//! * Bit flips on data frames keep the ack stream aligned (the replica
//!   still answers, with `NAK_CORRUPT`), but are generated only for the
//!   same closed-loop, surplus-free schedules as silent data drops —
//!   the fuzzer itself proved both halves of that constraint. Inside a
//!   pipelined window a *later* same-LBA frame can be sent — and
//!   applied against a base missing the damaged frame's update — before
//!   the NAK is collected, transiently violating the per-op historical
//!   oracle (repaired as soon as the NAK surfaces). And a surplus
//!   duplicated ack credits the rejected frame outright, exactly as it
//!   would a silently dropped one. In the closed-loop, surplus-free
//!   regime the NAK lands before anything else is sent, so corruption
//!   is always detected before it can skew a base.
//! * Duplication and reordering are injected on the ack direction only
//!   — duplicating a PRINS data frame double-applies a parity; no
//!   storage protocol survives a network that rewrites payload
//!   streams.
//! * Silent *data*-frame drops are generated only for `ack_window == 1`
//!   schedules without duplicated acks. The harness itself proved the
//!   limitation (seeds minimize to three ops): acks carry no frame
//!   identity, so inside an optimistic window — or against a stray
//!   surplus ack — the FIFO credit stream shifts one ahead and the
//!   *next* ack silently credits the lost write. The deployed fault
//!   model is a reliable session (iSCSI over TCP) where loss surfaces
//!   as disconnection; severs model that and are generated freely, as
//!   are ack drops (the dropped ack's write was applied, so
//!   misattribution only shuffles credit among applied writes and the
//!   final timeout lands safely in the uncertain-dirty set).
//!
//! Reads ride in every schedule: each [`SimOp::Read`] goes through the
//! epoch-guarded offload path and is checked against the freshness
//! oracle on the spot — an offloaded read that returns anything but the
//! owner's current block content fails the case immediately. A quarter
//! of all seeds additionally expand into *sharded* cases: two replica
//! groups behind a rendezvous placement, with a live migration of half
//! the volume started before the first op, advanced by interleaved
//! [`SimOp::MigrateStep`]s, and driven to cutover before quiescence —
//! so every fault in the schedule can land mid-copy or mid-cutover.

use std::time::Duration;

use prins_block::Lba;
use prins_cluster::{ClusterConfig, ReplicaState, ResyncStrategy};
use prins_net::Dir;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::world::{ClusterWorld, ShardWorld};

/// One step of a generated schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimOp {
    /// Foreground write of a deterministic block derived from
    /// `(lba, tag)`.
    Write {
        /// Target block.
        lba: u64,
        /// Content discriminator.
        tag: u8,
    },
    /// Cut a replica's link.
    Sever {
        /// Replica index.
        link: usize,
    },
    /// Bring a replica's link back.
    Restore {
        /// Replica index.
        link: usize,
    },
    /// Flip one bit in each of the next `n` data frames toward a
    /// replica. Unlike a drop, the damaged frame still arrives and
    /// still draws a response (`NAK_CORRUPT`), so the ack stream stays
    /// aligned — the seal must detect every flip and resync must
    /// repair it. Generated only at `ack_window == 1` (see the module
    /// docs for why pipelined windows can transiently skew a base).
    CorruptData {
        /// Replica index.
        link: usize,
        /// Frames to damage.
        n: u32,
    },
    /// Silently drop the next `n` data frames toward a replica.
    DropData {
        /// Replica index.
        link: usize,
        /// Frames to drop.
        n: u32,
    },
    /// Silently drop the next `n` acknowledgements from a replica.
    DropAcks {
        /// Replica index.
        link: usize,
        /// Frames to drop.
        n: u32,
    },
    /// Duplicate the next acknowledgement from a replica.
    DupAck {
        /// Replica index.
        link: usize,
    },
    /// Reorder the next two acknowledgements from a replica.
    ReorderAcks {
        /// Replica index.
        link: usize,
    },
    /// Collect all in-flight acknowledgements.
    Drain,
    /// Attempt a parity-log rejoin plus a bounded resync step.
    Rejoin {
        /// Replica index.
        link: usize,
    },
    /// Prune the primary's parity log up to the current sequence.
    Prune,
    /// Epoch-guarded read through the cluster, checked on the spot
    /// against the freshness oracle: the returned block must equal the
    /// owner primary's current content, whether it was offloaded to a
    /// replica or served locally.
    Read {
        /// Target block.
        lba: u64,
    },
    /// Advance the live shard migration by a bounded batch. Generated
    /// only for sharded cases (a no-op on single-group cases, so
    /// minimization can still delete it freely).
    MigrateStep,
}

/// A fully expanded fuzz case: topology plus schedule.
#[derive(Clone, Debug)]
pub struct FuzzCase {
    /// The seed it was generated from.
    pub seed: u64,
    /// Replica count (2 or 3).
    pub replicas: usize,
    /// Blocks per device.
    pub blocks: u64,
    /// Foreground ack window.
    pub ack_window: usize,
    /// Sharded topology: two rendezvous-placed replica groups with a
    /// live migration of the first half of the volume running across
    /// the whole schedule.
    pub sharded: bool,
    /// The schedule.
    pub ops: Vec<SimOp>,
}

/// Outcome of one case: the verdict plus the full deterministic event
/// trace (network trace + verdict line).
#[derive(Clone, Debug)]
pub struct RunReport {
    /// `Ok` or the first violated invariant.
    pub verdict: Result<(), String>,
    /// Byte-identical across runs of the same case.
    pub trace: String,
}

/// A failing seed with its shrunk schedule.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// The failing seed.
    pub seed: u64,
    /// The violated invariant.
    pub message: String,
    /// Greedily minimized schedule that still reproduces a failure.
    pub minimized: Vec<SimOp>,
}

/// Expands `seed` into a case. Deterministic: the schedule depends on
/// nothing but the seed.
pub fn generate(seed: u64) -> FuzzCase {
    let mut rng = StdRng::seed_from_u64(seed);
    let replicas = rng.random_range(2usize..=3);
    let blocks = 8u64;
    let ack_window = [1usize, 2, 4][rng.random_range(0usize..3)];
    // Silent data loss is only attributable with a closed-loop window
    // and a surplus-free ack stream (see module docs): such schedules
    // drop data frames but never duplicate acks; all others vice versa.
    let data_drops = ack_window == 1 && rng.random_bool(0.5);
    // A quarter of seeds run the sharded topology (two rendezvous
    // groups, live migration across the schedule); links then span
    // both groups.
    let sharded = rng.random_bool(0.25);
    let n_links = if sharded { 2 * replicas } else { replicas };
    let n_ops = rng.random_range(24usize..=64);
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        let link = rng.random_range(0usize..n_links);
        let roll = rng.random_range(0u32..100);
        ops.push(match roll {
            0..=41 => SimOp::Write {
                lba: rng.random_range(0..blocks),
                tag: rng.random_range(0u32..=255) as u8,
            },
            42..=49 => SimOp::Read {
                lba: rng.random_range(0..blocks),
            },
            // Bit flips keep FIFO credit aligned (the damaged frame
            // still draws a NAK_CORRUPT) but need the closed-loop,
            // surplus-free schedules — see the module docs.
            50..=54 => {
                let n = rng.random_range(1u32..=2);
                if data_drops {
                    SimOp::CorruptData { link, n }
                } else {
                    SimOp::DropAcks { link, n }
                }
            }
            55..=62 => SimOp::Sever { link },
            63..=72 => SimOp::Restore { link },
            73..=78 => {
                let n = rng.random_range(1u32..=2);
                if data_drops {
                    SimOp::DropData { link, n }
                } else {
                    SimOp::DropAcks { link, n }
                }
            }
            79..=84 => SimOp::DropAcks {
                link,
                n: rng.random_range(1u32..=2),
            },
            85..=88 => {
                if data_drops {
                    SimOp::ReorderAcks { link }
                } else {
                    SimOp::DupAck { link }
                }
            }
            89..=91 => SimOp::ReorderAcks { link },
            92..=94 => SimOp::Drain,
            95..=97 => SimOp::Rejoin { link },
            98 if sharded => SimOp::MigrateStep,
            _ => SimOp::Prune,
        });
    }
    FuzzCase {
        seed,
        replicas,
        blocks,
        ack_window,
        sharded,
        ops,
    }
}

fn apply(w: &mut ClusterWorld, op: SimOp, replicas: usize) -> Result<(), String> {
    match op {
        SimOp::Write { lba, tag } => {
            let _ = w.write_tag(lba, tag);
        }
        SimOp::Sever { link } => {
            let ctl = w.ctl(link % replicas);
            if ctl.is_up() {
                ctl.sever();
            }
        }
        SimOp::Restore { link } => {
            let ctl = w.ctl(link % replicas);
            if !ctl.is_up() {
                ctl.restore();
            }
        }
        SimOp::CorruptData { link, n } => w.ctl(link % replicas).corrupt_next(Dir::AtoB, n),
        SimOp::DropData { link, n } => w.ctl(link % replicas).drop_next(Dir::AtoB, n),
        SimOp::DropAcks { link, n } => w.ctl(link % replicas).drop_next(Dir::BtoA, n),
        SimOp::DupAck { link } => w.ctl(link % replicas).dup_next(Dir::BtoA, 1),
        SimOp::ReorderAcks { link } => w.ctl(link % replicas).reorder_next(Dir::BtoA),
        SimOp::Drain => {
            w.cluster_mut().drain();
        }
        SimOp::Rejoin { link } => {
            let r = link % replicas;
            if w.cluster().state(r) != ReplicaState::Online && w.ctl(r).is_up() {
                let _ = w.cluster_mut().rejoin(r, ResyncStrategy::ParityLog);
                let _ = w.cluster_mut().resync_step(r, 2);
            }
        }
        SimOp::Prune => {
            let log = w.cluster().log();
            log.prune(log.current_seq());
        }
        // The read oracle checks freshness inline: a stale offloaded
        // read fails the op itself, not just a later invariant sweep.
        SimOp::Read { lba } => {
            w.read_checked(lba)?;
        }
        SimOp::MigrateStep => {}
    }
    Ok(())
}

/// Sharded-topology counterpart of [`apply`]: `link` indexes the
/// flattened `groups × replicas` link matrix, writes and reads route
/// through the rendezvous placement (dual-dispatching into the
/// migration target while the copy is live), and `MigrateStep` drives
/// the copy forward.
fn apply_sharded(w: &mut ShardWorld, op: SimOp, replicas: usize) -> Result<(), String> {
    let split = |link: usize| ((link / replicas) % 2, link % replicas);
    match op {
        SimOp::Write { lba, tag } => {
            let _ = w.write_tag(lba, tag);
        }
        SimOp::Sever { link } => {
            let (g, r) = split(link);
            let ctl = w.ctl(g, r);
            if ctl.is_up() {
                ctl.sever();
            }
        }
        SimOp::Restore { link } => {
            let (g, r) = split(link);
            let ctl = w.ctl(g, r);
            if !ctl.is_up() {
                ctl.restore();
            }
        }
        SimOp::CorruptData { link, n } => {
            let (g, r) = split(link);
            w.ctl(g, r).corrupt_next(Dir::AtoB, n);
        }
        SimOp::DropData { link, n } => {
            let (g, r) = split(link);
            w.ctl(g, r).drop_next(Dir::AtoB, n);
        }
        SimOp::DropAcks { link, n } => {
            let (g, r) = split(link);
            w.ctl(g, r).drop_next(Dir::BtoA, n);
        }
        SimOp::DupAck { link } => {
            let (g, r) = split(link);
            w.ctl(g, r).dup_next(Dir::BtoA, 1);
        }
        SimOp::ReorderAcks { link } => {
            let (g, r) = split(link);
            w.ctl(g, r).reorder_next(Dir::BtoA);
        }
        SimOp::Drain => {
            for g in 0..w.sharded().group_count() {
                w.sharded_mut().group_mut(g).drain();
            }
        }
        SimOp::Rejoin { link } => {
            let (g, r) = split(link);
            let state = w.sharded().group(g).state(r);
            if state != ReplicaState::Online && w.ctl(g, r).is_up() {
                let group = w.sharded_mut().group_mut(g);
                let _ = group.rejoin(r, ResyncStrategy::ParityLog);
                let _ = group.resync_step(r, 2);
            }
        }
        SimOp::Prune => {
            for g in 0..w.sharded().group_count() {
                let log = w.sharded().group(g).log();
                log.prune(log.current_seq());
            }
        }
        SimOp::Read { lba } => {
            w.read_checked(lba)?;
        }
        // Copy failures here are transient (the cursor does not
        // advance past an unwritten block); real damage surfaces in
        // the historical check after the op.
        SimOp::MigrateStep => {
            if w.sharded().migration().is_some() {
                let _ = w.sharded_mut().migrate_step(2);
            }
        }
    }
    Ok(())
}

/// Runs one case to quiescence: the mid-run historical invariant after
/// every op, then heal + resync + the full invariant set.
pub fn run_case(case: &FuzzCase) -> RunReport {
    let config = ClusterConfig {
        ack_timeout: Duration::from_millis(50),
        write_quorum: 0,
        offline_after: 2,
        ack_window: case.ack_window,
        ..Default::default()
    };
    if case.sharded {
        return run_case_sharded(case, config);
    }
    let mut w = ClusterWorld::new(
        case.blocks,
        case.replicas,
        config,
        Duration::from_micros(200),
    );
    let mut verdict = Ok(());
    for (i, &op) in case.ops.iter().enumerate() {
        let step = apply(&mut w, op, case.replicas).and_then(|()| w.check_historical());
        if let Err(e) = step {
            verdict = Err(format!("after op {i} ({op:?}): {e}"));
            break;
        }
    }
    if verdict.is_ok() {
        verdict = w
            .quiesce(ResyncStrategy::ParityLog)
            .and_then(|()| w.check_invariants());
    }
    // Observability oracle: a schedule that injected no link faults
    // must leave a quiet registry — any NAK, ack failure, or lifecycle
    // transition on a healthy network is a bug in the stack (or in the
    // instrumentation claiming one happened). Reads on a healthy
    // cluster are quiet too: they offload without a single rejection.
    let fault_free = case.ops.iter().all(|op| {
        matches!(
            op,
            SimOp::Write { .. } | SimOp::Read { .. } | SimOp::Drain | SimOp::Prune
        )
    });
    if verdict.is_ok() && fault_free {
        verdict = w.check_quiet_run();
    }
    let mut trace = w.net().trace().join("\n");
    trace.push_str("\nevents: ");
    trace.push_str(&w.registry().snapshot().event_summary_json());
    trace.push_str("\nverdict: ");
    match &verdict {
        Ok(()) => trace.push_str("ok"),
        Err(e) => trace.push_str(e),
    }
    RunReport { verdict, trace }
}

/// Sharded variant of [`run_case`]: two rendezvous-placed groups, a
/// live migration of the volume's first half started before the first
/// op and driven to cutover before quiescence, so every generated
/// fault can land mid-copy. Writes into the migrating range
/// dual-dispatch for the whole schedule; reads stay under the
/// freshness oracle throughout.
fn run_case_sharded(case: &FuzzCase, config: ClusterConfig) -> RunReport {
    let slot = (case.blocks / 2).max(1);
    let mut w = ShardWorld::with_slots(
        case.blocks,
        2,
        case.replicas,
        config,
        Duration::from_micros(200),
        slot,
    );
    let from = w.sharded().owner(Lba(0));
    let to = 1 - from;
    let mut verdict = w
        .sharded_mut()
        .migrate_start(0..slot, from, to)
        .map_err(|e| format!("migrate_start: {e}"));
    if verdict.is_ok() {
        for (i, &op) in case.ops.iter().enumerate() {
            let step = apply_sharded(&mut w, op, case.replicas).and_then(|()| w.check_historical());
            if let Err(e) = step {
                verdict = Err(format!("after op {i} ({op:?}): {e}"));
                break;
            }
        }
    }
    if verdict.is_ok() {
        // Drive the copy to cutover (faults may still be live — the
        // copy path degrades like any replicated write), then heal and
        // run the full per-group invariant set.
        while verdict.is_ok() && w.sharded().migration().is_some() {
            verdict = w
                .sharded_mut()
                .migrate_step(64)
                .map(|_| ())
                .map_err(|e| format!("migrate_step at quiescence: {e}"));
        }
        verdict = verdict
            .and_then(|()| w.quiesce(ResyncStrategy::ParityLog))
            .and_then(|()| w.check_invariants());
    }
    let mut trace = w.net().trace().join("\n");
    trace.push_str("\nevents: ");
    trace.push_str(&w.registry().snapshot().event_summary_json());
    trace.push_str("\nverdict: ");
    match &verdict {
        Ok(()) => trace.push_str("ok"),
        Err(e) => trace.push_str(e),
    }
    RunReport { verdict, trace }
}

/// Expands and runs one seed.
pub fn run_seed(seed: u64) -> RunReport {
    run_case(&generate(seed))
}

/// Greedy chunk-removal shrink: repeatedly delete op ranges that keep
/// the case failing, halving the chunk size down to single ops.
pub fn minimize(case: &FuzzCase) -> FuzzCase {
    let still_fails = |ops: &[SimOp]| {
        let candidate = FuzzCase {
            ops: ops.to_vec(),
            ..case.clone()
        };
        run_case(&candidate).verdict.is_err()
    };
    let mut ops = case.ops.clone();
    let mut chunk = (ops.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < ops.len() {
            let mut candidate = ops.clone();
            candidate.drain(i..(i + chunk).min(candidate.len()));
            if still_fails(&candidate) {
                ops = candidate;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    FuzzCase {
        ops,
        ..case.clone()
    }
}

/// Runs `seed`; on failure, shrinks the schedule and reports it.
///
/// # Errors
///
/// The violated invariant plus the minimized schedule.
pub fn fuzz_seed(seed: u64) -> Result<(), FuzzFailure> {
    let case = generate(seed);
    match run_case(&case).verdict {
        Ok(()) => Ok(()),
        Err(message) => {
            let minimized = minimize(&case);
            let message = run_case(&minimized).verdict.err().unwrap_or(message);
            Err(FuzzFailure {
                seed,
                message,
                minimized: minimized.ops,
            })
        }
    }
}
