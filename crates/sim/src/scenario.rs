//! Named fault scenarios: scripted schedules over the simulation
//! worlds, each ending in quiescence and the full invariant set.
//!
//! Every scenario is a plain function returning the run's deterministic
//! event-count summary (the `sim-replay --events` golden) and trace
//! summary (the `--traces` golden) or a description of the violated
//! invariant; the [`SCENARIOS`] table maps names to functions for the
//! test suite and the `sim-replay` binary.

use std::time::Duration;

use prins_block::{BlockDevice, Lba};
use prins_cluster::{ClusterConfig, ClusterError, ReplicaState, ResyncStrategy};
use prins_net::Dir;
use prins_obs::{Registry, TraceSink};

use crate::world::{ClusterWorld, EcWorld, EngineWorld, EngineWorldConfig, ShardWorld};

/// What a scenario run leaves behind: the deterministic event-count
/// summary (the `sim-replay --events` golden) and the trace-summary
/// JSON from the world's flight recorder (the `--traces` golden).
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// Sorted event-kind → count JSON from the registry's event ring.
    pub events: String,
    /// One-line trace summary JSON from the world's [`TraceSink`].
    pub traces: String,
}

impl ScenarioOutcome {
    fn collect(registry: &Registry, trace: &TraceSink) -> Self {
        Self {
            events: registry.snapshot().event_summary_json(),
            traces: trace.summary_json(),
        }
    }
}

fn cluster_config(ack_window: usize, write_quorum: usize) -> ClusterConfig {
    ClusterConfig {
        // Virtual milliseconds: generous against µs link delays, free
        // against the wall clock.
        ack_timeout: Duration::from_millis(50),
        write_quorum,
        offline_after: 2,
        ack_window,
        ..Default::default()
    }
}

/// A link repeatedly drops and recovers while writes keep flowing; the
/// flapping replica degrades, misses writes, and must delta-resync back
/// to bit-identity.
pub fn link_flap() -> Result<ScenarioOutcome, String> {
    let mut w = ClusterWorld::new(16, 2, cluster_config(1, 0), Duration::from_micros(200));
    let mut tag = 0u8;
    for flap in 0..4 {
        for i in 0..6 {
            tag = tag.wrapping_add(1);
            w.write_tag((flap * 3 + i) % 16, tag).map_err(op_err)?;
        }
        w.ctl(0).sever();
        for i in 0..6 {
            tag = tag.wrapping_add(1);
            w.write_tag((flap * 5 + i) % 16, tag).map_err(op_err)?;
        }
        w.check_historical()?;
        w.ctl(0).restore();
        w.quiesce(ResyncStrategy::ParityLog)?;
        w.check_invariants()?;
    }
    Ok(ScenarioOutcome::collect(w.registry(), w.trace_sink()))
}

/// The replica's link dies *while a parity-log resync is replaying*:
/// already-sent but unacknowledged resync frames must be re-marked
/// uncertain, and the second resync must fall back to full images for
/// them instead of double-applying parity chains.
pub fn crash_mid_resync() -> Result<ScenarioOutcome, String> {
    let mut w = ClusterWorld::new(16, 2, cluster_config(1, 0), Duration::from_micros(200));
    for lba in 0..8 {
        w.write_tag(lba, 1).map_err(op_err)?;
    }
    // Miss a batch of writes while offline.
    w.ctl(0).sever();
    for lba in 0..8 {
        w.write_tag(lba, 2).map_err(op_err)?;
        w.write_tag(lba, 3).map_err(op_err)?;
    }
    w.ctl(0).restore();
    // Start a resync, then kill the link partway: ack collection for
    // the in-flight batch fails and aborts the resync.
    w.cluster_mut()
        .rejoin(0, ResyncStrategy::ParityLog)
        .map_err(op_err)?;
    let _ = w.cluster_mut().resync_step(0, 3);
    w.ctl(0).sever();
    let _ = w.cluster_mut().resync_step(0, 3);
    if w.cluster().state(0) == ReplicaState::Online {
        return Err("resync reported completion across a dead link".into());
    }
    w.check_historical()?;
    w.ctl(0).restore();
    w.quiesce(ResyncStrategy::ParityLog)?;
    w.check_invariants()?;
    Ok(ScenarioOutcome::collect(w.registry(), w.trace_sink()))
}

/// Acknowledgements come back out of order (and one pair of
/// distinct-LBA data frames swaps on the wire); per-LBA apply order and
/// final bit-identity must survive.
pub fn reorder() -> Result<ScenarioOutcome, String> {
    let mut w = ClusterWorld::new(16, 2, cluster_config(4, 0), Duration::from_micros(200));
    w.ctl(0).reorder_next(Dir::BtoA);
    for lba in 0..8 {
        w.write_tag(lba, 1).map_err(op_err)?;
    }
    w.cluster_mut().drain();
    // Swap two data frames going to distinct blocks: they commute.
    w.ctl(0).reorder_next(Dir::AtoB);
    w.write_tag(10, 2).map_err(op_err)?;
    w.write_tag(11, 2).map_err(op_err)?;
    w.cluster_mut().drain();
    w.quiesce(ResyncStrategy::ParityLog)?;
    w.check_invariants()?;
    Ok(ScenarioOutcome::collect(w.registry(), w.trace_sink()))
}

/// An acknowledgement is duplicated on the wire. The ack-stream
/// alignment logic must absorb the stray ack without crediting a write
/// that was never applied.
pub fn dup() -> Result<ScenarioOutcome, String> {
    let mut w = ClusterWorld::new(16, 2, cluster_config(2, 0), Duration::from_micros(200));
    w.ctl(0).dup_next(Dir::BtoA, 1);
    for lba in 0..8 {
        w.write_tag(lba, 1).map_err(op_err)?;
    }
    w.cluster_mut().drain();
    w.quiesce(ResyncStrategy::ParityLog)?;
    w.check_invariants()?;
    Ok(ScenarioOutcome::collect(w.registry(), w.trace_sink()))
}

/// A high-latency, per-byte-priced WAN link: correctness is unchanged
/// and the virtual clock (not the wall clock) pays for the distance.
pub fn slow_wan() -> Result<ScenarioOutcome, String> {
    let mut w = ClusterWorld::new(16, 2, cluster_config(4, 0), Duration::from_micros(200));
    w.ctl(0).set_delay(
        Dir::AtoB,
        Duration::from_millis(10),
        Duration::from_millis(1),
    );
    w.ctl(0)
        .set_delay(Dir::BtoA, Duration::from_millis(10), Duration::ZERO);
    for round in 0..4u8 {
        for lba in 0..8 {
            w.write_tag(lba, round + 1).map_err(op_err)?;
        }
    }
    w.cluster_mut().drain();
    let now = w.net().clock().now();
    if now < 20_000_000 {
        return Err(format!("WAN round-trips cost only {now} virtual ns"));
    }
    w.quiesce(ResyncStrategy::ParityLog)?;
    w.check_invariants()?;
    Ok(ScenarioOutcome::collect(w.registry(), w.trace_sink()))
}

/// Every replica link dies under a `write_quorum` of 2: writes must
/// fail with `QuorumLost` (while still landing on the primary), and the
/// cluster must recover to bit-identity once links return.
pub fn quorum_loss() -> Result<ScenarioOutcome, String> {
    let mut w = ClusterWorld::new(16, 2, cluster_config(1, 2), Duration::from_micros(200));
    for lba in 0..4 {
        w.write_tag(lba, 1).map_err(op_err)?;
    }
    w.ctl(0).sever();
    w.ctl(1).sever();
    let mut quorum_losses = 0;
    for lba in 0..4 {
        match w.write_tag(lba, 2) {
            Err(ClusterError::QuorumLost { .. }) => quorum_losses += 1,
            Ok(_) => {}
            Err(e) => return Err(format!("unexpected write error: {e}")),
        }
    }
    if quorum_losses == 0 {
        return Err("no write reported quorum loss with every link dead".into());
    }
    w.check_historical()?;
    w.quiesce(ResyncStrategy::DirtyBitmap)?;
    w.check_invariants()?;
    Ok(ScenarioOutcome::collect(w.registry(), w.trace_sink()))
}

/// Engine pipeline: XOR-fold coalescing under load, then a link dies
/// mid-stream ("crash"). The flush must report the failure, surviving
/// replicas must be bit-identical, and the dead replica must hold a
/// historical prefix — never a torn or double-applied state.
pub fn fold_then_crash() -> Result<ScenarioOutcome, String> {
    let mut w = EngineWorld::new(EngineWorldConfig {
        coalesce: true,
        ack_window: 8,
        blocks: 8,
        ..Default::default()
    });
    // Hot blocks: plenty of same-LBA folds while frames queue.
    for round in 0..10u8 {
        for lba in 0..4 {
            w.write_tag(lba, round)?;
        }
    }
    w.step();
    w.ctl(0).sever();
    for round in 10..20u8 {
        for lba in 0..4 {
            w.write_tag(lba, round)?;
        }
    }
    if w.flush().is_ok() {
        return Err("flush succeeded across a severed link".into());
    }
    w.check_historical()?;
    w.check_order()?;
    w.check_conservation()?;
    w.check_obs()?;
    if w.engine().stats().coalesced_writes == 0 {
        return Err("workload produced no coalesced writes".into());
    }
    Ok(ScenarioOutcome::collect(w.registry(), w.trace_sink()))
}

/// The primary prunes its parity log past a lagging replica's first
/// miss; a parity-log rejoin must detect the gap and fall back to full
/// block images instead of replaying a truncated chain.
pub fn prune_then_rejoin() -> Result<ScenarioOutcome, String> {
    let mut w = ClusterWorld::new(16, 2, cluster_config(1, 0), Duration::from_micros(200));
    for lba in 0..8 {
        w.write_tag(lba, 1).map_err(op_err)?;
    }
    w.ctl(0).sever();
    for lba in 0..8 {
        w.write_tag(lba, 2).map_err(op_err)?;
    }
    // Prune the whole log: the replica's chain suffix is gone.
    let log = w.cluster().log();
    log.prune(log.current_seq());
    w.ctl(0).restore();
    w.quiesce(ResyncStrategy::ParityLog)?;
    w.check_invariants()?;
    let resync_bytes = w.cluster().status(0).resync_bytes;
    if resync_bytes == 0 {
        return Err("pruned-log rejoin shipped no resync bytes".into());
    }
    Ok(ScenarioOutcome::collect(w.registry(), w.trace_sink()))
}

/// Engine pipeline: `flush()` is called while a replica link is down.
/// The barrier must complete (not hang), report the lane failure, and
/// leave the surviving replica bit-identical after a second, clean
/// flush.
pub fn flush_during_link_failure() -> Result<ScenarioOutcome, String> {
    let mut w = EngineWorld::new(EngineWorldConfig {
        ack_window: 4,
        ..Default::default()
    });
    for lba in 0..8 {
        w.write_tag(lba, 1)?;
    }
    w.flush()?;
    w.check_identity()?;
    w.ctl(0).sever();
    for lba in 0..8 {
        w.write_tag(lba, 2)?;
    }
    if w.flush().is_ok() {
        return Err("flush succeeded across a severed link".into());
    }
    w.check_historical()?;
    w.check_order()?;
    w.check_conservation()?;
    w.check_obs()?;
    // The other replica kept receiving: a fresh write + flush round
    // must still fail (lane 0 is dead for good) but replica 1 tracks.
    w.write_tag(3, 3)?;
    let _ = w.flush();
    w.check_historical()?;
    w.check_obs()?;
    Ok(ScenarioOutcome::collect(w.registry(), w.trace_sink()))
}

/// A data frame is silently dropped by the network (the sender's
/// `send()` succeeds). The lost acknowledgement times out, the block is
/// marked *uncertain*-dirty, and the delta resync must ship a full
/// image — a parity replay could not know whether the frame arrived.
pub fn drop_data_frame() -> Result<ScenarioOutcome, String> {
    let mut w = ClusterWorld::new(16, 2, cluster_config(1, 0), Duration::from_micros(200));
    w.write_tag(5, 1).map_err(op_err)?;
    w.ctl(0).drop_next(Dir::AtoB, 1);
    let _ = w.write_tag(5, 2); // ack times out; replica 0 degrades
    w.check_historical()?;
    w.quiesce(ResyncStrategy::ParityLog)?;
    w.check_invariants()?;
    Ok(ScenarioOutcome::collect(w.registry(), w.trace_sink()))
}

/// The mirror image of [`drop_data_frame`]: the frame arrives and is
/// applied, but its *acknowledgement* is dropped. The primary cannot
/// distinguish the two cases; replaying the parity chain here would XOR
/// the parity in twice. The uncertain-dirty fallback must keep the
/// replica on a historical state.
pub fn lost_ack_resync() -> Result<ScenarioOutcome, String> {
    let mut w = ClusterWorld::new(16, 2, cluster_config(1, 0), Duration::from_micros(200));
    w.write_tag(5, 1).map_err(op_err)?;
    w.ctl(0).drop_next(Dir::BtoA, 1);
    let _ = w.write_tag(5, 2); // applied on the replica, ack lost
    w.check_historical()?;
    w.quiesce(ResyncStrategy::ParityLog)?;
    w.check_invariants()?;
    Ok(ScenarioOutcome::collect(w.registry(), w.trace_sink()))
}

/// A data frame takes a bit flip on the wire. The seal's CRC32C catches
/// it at the replica (`NAK_CORRUPT`), the block goes uncertain-dirty,
/// and resync restores bit-identity — the corruption is *detected*,
/// never silently applied as a garbage XOR base.
pub fn corruption_wire_flip() -> Result<ScenarioOutcome, String> {
    let mut w = ClusterWorld::new(16, 2, cluster_config(1, 0), Duration::from_micros(200));
    for lba in 0..8 {
        w.write_tag(lba, 1).map_err(op_err)?;
    }
    w.ctl(0).corrupt_next(Dir::AtoB, 1);
    let _ = w.write_tag(5, 2); // damaged in flight; replica 0 rejects it
    w.check_historical()?;
    w.quiesce(ResyncStrategy::ParityLog)?;
    w.check_invariants()?;
    let failures = w.registry().snapshot().counters["checksum_failures"];
    if failures == 0 {
        return Err("wire bit flip produced no detected checksum failure".into());
    }
    Ok(ScenarioOutcome::collect(w.registry(), w.trace_sink()))
}

/// Bit flips land on the wire *and* on a replica's disk. The wire flip
/// is caught by the frame seal; the media flip — invisible to any wire
/// checksum — is caught by the scrubber's read-back digest probes and
/// repaired through resync. The history oracle proves the corruption
/// was never laundered into a "valid" state.
pub fn corruption_scrub_repair() -> Result<ScenarioOutcome, String> {
    let mut w = ClusterWorld::new(16, 2, cluster_config(1, 0), Duration::from_micros(200));
    for lba in 0..8 {
        w.write_tag(lba, 1).map_err(op_err)?;
    }
    // Wire fault: one damaged data frame, detected and resynced.
    w.ctl(0).corrupt_next(Dir::AtoB, 1);
    let _ = w.write_tag(3, 2);
    w.quiesce(ResyncStrategy::ParityLog)?;

    // Media fault: flip one bit on replica 0's disk behind the wire.
    let dev = w.replica_dev(0);
    let victim = prins_block::Lba(6);
    let mut block = dev.read_block_vec(victim).map_err(op_err)?;
    block[11] ^= 0x08;
    dev.write_block(victim, &block).map_err(op_err)?;

    let outcomes = w.cluster_mut().scrub(0, 1).map_err(op_err)?;
    let repaired: usize = outcomes.iter().map(|(_, o)| o.repaired).sum();
    if repaired == 0 {
        return Err("scrub found nothing to repair after a disk bit flip".into());
    }
    w.net().run_until_idle();
    w.quiesce(ResyncStrategy::ParityLog)?;
    w.check_invariants()?;
    let snap = w.registry().snapshot();
    if snap.counters["checksum_failures"] == 0 {
        return Err("no detected checksum failure".into());
    }
    if snap.counters["scrub_repairs"] == 0 {
        return Err("no scrub repair recorded".into());
    }
    Ok(ScenarioOutcome::collect(w.registry(), w.trace_sink()))
}

/// Engine pipeline: three bit flips land on the same frame (the first
/// copy and two retransmissions). The lane's bounded retransmit absorbs
/// all of them — the flush *succeeds*, replicas end bit-identical, and
/// the counters show the corruption was detected, not ignored.
pub fn corruption_wire_retransmit() -> Result<ScenarioOutcome, String> {
    // Closed-loop window: retransmission is only attempted when the
    // damaged frame is the sole in-flight one.
    let mut w = EngineWorld::new(EngineWorldConfig {
        blocks: 8,
        ack_window: 1,
        ..Default::default()
    });
    w.ctl(0).corrupt_next(Dir::AtoB, 3);
    for round in 0..3u8 {
        for lba in 0..8 {
            w.write_tag(lba, round + 1)?;
        }
    }
    w.flush()
        .map_err(|e| format!("retransmission should absorb wire corruption: {e}"))?;
    w.check_identity()?;
    w.check_order()?;
    w.check_conservation()?;
    w.check_obs()?;
    let snap = w.registry().snapshot();
    if snap.counters["checksum_failures"] == 0 {
        return Err("no detected checksum failure".into());
    }
    if snap.counters["retransmits"] == 0 {
        return Err("no retransmission recorded".into());
    }
    Ok(ScenarioOutcome::collect(w.registry(), w.trace_sink()))
}

/// Checks one rebuild report against the repair-bandwidth bound: wire
/// bytes at most `1.25×` the survivors' dense image bytes (k strip
/// reads plus one sparse shipment per stripe, never n full images).
fn check_rebuild_bound(who: &str, report: &prins_cluster::EcRebuildReport) -> Result<(), String> {
    if report.wire_bytes as f64 > 1.25 * report.survivor_image_bytes as f64 {
        return Err(format!(
            "{who}: rebuild moved {} wire bytes against {} survivor image bytes \
             — repair-bandwidth bound (1.25×) violated",
            report.wire_bytes, report.survivor_image_bytes
        ));
    }
    Ok(())
}

/// An erasure-coded group loses one strip-holding node mid-workload.
/// Writes continue degraded (the dead node's strips go stale), a fresh
/// replacement is rebuilt from exactly `k` survivors within the
/// repair-bandwidth bound, and afterwards every strip again equals the
/// systematic encoding of the logical image — with every decoded block
/// a state the history oracle has seen.
pub fn ec_rebuild_one() -> Result<ScenarioOutcome, String> {
    let mut w = EcWorld::new(4, Duration::from_micros(200));
    let blocks = w.blocks();
    for lba in 0..blocks {
        w.write_tag(lba, 1).map_err(op_err)?;
    }
    w.check_strips_encode_logical()?;

    let lost = 2;
    w.fail_node(lost).map_err(op_err)?;
    let mut skipped = 0;
    for lba in 0..blocks {
        skipped += w.write_tag(lba, 2).map_err(op_err)?.skipped;
    }
    if skipped == 0 {
        return Err("degraded writes skipped no frames with a node down".into());
    }
    if w.group().dirty_stripes() == 0 {
        return Err("degraded writes marked no stripes dirty".into());
    }
    // Degraded reads reconstruct the missing column off k survivors.
    w.check_decode_matches_oracle()?;

    let report = w.replace_and_rebuild(lost)?;
    if report.stripes != w.group().stripes() {
        return Err(format!(
            "rebuild covered {} of {} stripes",
            report.stripes,
            w.group().stripes()
        ));
    }
    if w.group().dirty_stripes() != 0 {
        return Err("rebuild left dirty stripes on a fully-online group".into());
    }
    check_rebuild_bound("single rebuild", &report)?;
    w.check_strips_encode_logical()?;
    w.check_decode_matches_oracle()?;
    // Post-rebuild writes flow to all n nodes again.
    for lba in 0..blocks {
        let out = w.write_tag(lba, 3).map_err(op_err)?;
        if out.skipped != 0 {
            return Err("write skipped a node after rebuild completed".into());
        }
    }
    w.check_strips_encode_logical()?;
    Ok(ScenarioOutcome::collect(w.registry(), w.trace_sink()))
}

/// Two strip-holding nodes die — the full `m = 2` fault tolerance of
/// the code. Degraded decode still recovers every logical block; the
/// first rebuild runs with the other node still down (exactly `k`
/// survivors reachable, stale strips excluded), the second restores
/// full health, and both stay within the repair-bandwidth bound.
pub fn ec_rebuild_two() -> Result<ScenarioOutcome, String> {
    let mut w = EcWorld::new(4, Duration::from_micros(200));
    let blocks = w.blocks();
    for lba in 0..blocks {
        w.write_tag(lba, 1).map_err(op_err)?;
    }
    let (first, second) = (1, 4);
    w.fail_node(first).map_err(op_err)?;
    w.fail_node(second).map_err(op_err)?;
    for lba in 0..blocks {
        w.write_tag(lba, 2).map_err(op_err)?;
    }
    // Both erasures outstanding: decode leans on the full code.
    w.check_decode_matches_oracle()?;

    let r1 = w.replace_and_rebuild(first)?;
    check_rebuild_bound("first rebuild", &r1)?;
    if w.group().dirty_stripes() == 0 {
        return Err("dirty stripes forgotten while a node is still down".into());
    }
    w.check_decode_matches_oracle()?;

    let r2 = w.replace_and_rebuild(second)?;
    check_rebuild_bound("second rebuild", &r2)?;
    if w.group().dirty_stripes() != 0 {
        return Err("rebuild left dirty stripes on a fully-online group".into());
    }
    w.check_strips_encode_logical()?;
    w.check_decode_matches_oracle()?;
    for lba in 0..blocks {
        w.write_tag(lba, 3).map_err(op_err)?;
    }
    w.check_strips_encode_logical()?;
    Ok(ScenarioOutcome::collect(w.registry(), w.trace_sink()))
}

/// A live shard migration runs to cutover while the source group's
/// link crawls at 10× its normal delay, foreground writes keep landing
/// in the moving range, offloaded reads keep being served, and one of
/// the target group's replicas is killed mid-copy. The history oracle
/// must hold throughout: no offloaded read observes stale content, and
/// the cutover leaves the range owned by the target with every replica
/// of every group on a historical state.
pub fn migrate_under_faults() -> Result<ScenarioOutcome, String> {
    // 16 blocks in 8-block slots: each slot's run shares an owner, so
    // a contiguous range is available to migrate.
    let mut w = ShardWorld::with_slots(
        16,
        2,
        2,
        cluster_config(1, 0),
        Duration::from_micros(200),
        8,
    );
    let mut tag = 0u8;
    for lba in 0..16 {
        tag = tag.wrapping_add(1);
        w.write_tag(lba, tag).map_err(op_err)?;
    }
    let from = w.sharded().owner(Lba(0));
    let to = 1 - from;

    // The source group's first link crawls: in-flight acks lag the
    // copy, exercising the epoch guard at cutover.
    w.ctl(from, 0).set_delay(
        Dir::AtoB,
        Duration::from_millis(2),
        Duration::from_micros(200),
    );
    w.ctl(from, 0)
        .set_delay(Dir::BtoA, Duration::from_millis(2), Duration::ZERO);

    w.sharded_mut()
        .migrate_start(0..8, from, to)
        .map_err(op_err)?;
    let mut killed = false;
    loop {
        let remaining = w.sharded_mut().migrate_step(2).map_err(op_err)?;
        // Foreground writes into the moving range between copy steps
        // (dual-dispatched until cutover), plus checked reads.
        tag = tag.wrapping_add(1);
        w.write_tag(remaining % 8, tag).map_err(op_err)?;
        w.read_checked(remaining % 8)?;
        w.check_historical()?;
        if !killed && remaining <= 4 {
            // Node kill mid-copy: one of the target group's replicas
            // dies; the copy must keep going (write quorum 0).
            w.ctl(to, 1).sever();
            killed = true;
        }
        if remaining == 0 {
            break;
        }
    }
    if w.sharded().migration().is_some() {
        return Err("migration still pending after the copy drained".into());
    }
    for lba in 0..8 {
        if w.sharded().owner(Lba(lba)) != to {
            return Err(format!("block {lba} not owned by group {to} after cutover"));
        }
    }
    // Post-cutover traffic routes to the new owner; reads stay fresh.
    for lba in 0..8 {
        tag = tag.wrapping_add(1);
        w.write_tag(lba, tag).map_err(op_err)?;
        w.read_checked(lba)?;
    }
    w.quiesce(ResyncStrategy::ParityLog)?;
    w.check_invariants()?;
    let snap = w.registry().snapshot();
    if snap.counters["migration_bytes"] == 0 {
        return Err("live migration booked no migration bytes".into());
    }
    Ok(ScenarioOutcome::collect(w.registry(), w.trace_sink()))
}

/// Offloaded reads race a replica outage and rejoin: while the replica
/// is lagging, offline, or still resyncing, the freshness guard must
/// reject it as a read source (`read_rejected_stale`), and no read may
/// ever return pre-rejoin bytes — the oracle checks every single read.
pub fn read_offload_rejoin() -> Result<ScenarioOutcome, String> {
    let mut w = ClusterWorld::new(16, 3, cluster_config(1, 0), Duration::from_micros(200));
    let mut tag = 0u8;
    for lba in 0..16 {
        tag = tag.wrapping_add(1);
        w.write_tag(lba, tag).map_err(op_err)?;
    }
    // Healthy: reads spread over all three replicas.
    for lba in 0..16 {
        w.read_checked(lba)?;
    }
    let snap = w.registry().snapshot();
    if snap.counters["reads_offloaded"] != 16 {
        return Err(format!(
            "healthy cluster offloaded {} of 16 reads",
            snap.counters["reads_offloaded"]
        ));
    }

    // Replica 0 dies and misses writes; reads keep flowing and must
    // never be served its stale copy.
    w.ctl(0).sever();
    for lba in 0..16 {
        tag = tag.wrapping_add(1);
        w.write_tag(lba, tag).map_err(op_err)?;
        w.read_checked(lba)?;
    }
    w.check_historical()?;

    // Rejoin races the read stream: reads issued mid-resync must skip
    // the still-catching-up replica.
    w.ctl(0).restore();
    w.cluster_mut()
        .rejoin(0, ResyncStrategy::ParityLog)
        .map_err(op_err)?;
    loop {
        let remaining = w.cluster_mut().resync_step(0, 2).map_err(op_err)?;
        tag = tag.wrapping_add(1);
        w.write_tag(u64::from(tag) % 16, tag).map_err(op_err)?;
        w.read_checked(u64::from(tag) % 16)?;
        if remaining == 0 {
            break;
        }
    }
    w.quiesce(ResyncStrategy::ParityLog)?;
    w.check_invariants()?;
    // Back online: the rejoined replica serves again.
    for lba in 0..16 {
        w.read_checked(lba)?;
    }
    let snap = w.registry().snapshot();
    if snap.counters["read_rejected_stale"] == 0 {
        return Err("outage and rejoin produced no guard rejections".into());
    }
    Ok(ScenarioOutcome::collect(w.registry(), w.trace_sink()))
}

/// The adaptive policy engine rides the foreground pipeline through a
/// workload phase change: an OLTP-shaped small-delta stream (parity
/// picks, deep batching) flips into incompressible churn (full-image
/// picks). Both phase transitions must commit, decisions must track
/// each phase's shape, counterfactual accounting must stay sane
/// (regret a small fraction of shipped bytes), and the ordinary engine
/// invariant set — bit-identity after a clean flush, per-LBA order,
/// byte conservation, obs cross-checks — must hold with the policy
/// engine driving encoding and retuning the pipeline live.
pub fn adaptive_phase_shift() -> Result<ScenarioOutcome, String> {
    use prins_policy::WorkloadPhase;

    let mut w = EngineWorld::new(EngineWorldConfig {
        blocks: 8,
        ack_window: 8,
        adaptive: true,
        ..Default::default()
    });
    // Small-delta phase: three 64-decision windows of ~2-byte deltas.
    for round in 0..24u8 {
        for lba in 0..8 {
            w.write_tag(lba, round + 1)?;
        }
    }
    w.flush()?;
    {
        let policy = w.engine().adaptive().ok_or("engine lost its policy")?;
        if policy.phase() != WorkloadPhase::SmallDelta {
            return Err(format!(
                "small-delta stream classified as {}",
                policy.phase().name()
            ));
        }
        let parity = policy.counters().pick_parity.get();
        if parity < 180 {
            return Err(format!("only {parity} of 192 small deltas picked parity"));
        }
    }
    // Churn phase: every byte of every block changes, incompressibly.
    for round in 0..24u8 {
        for lba in 0..8 {
            w.write_fill(lba, round + 1)?;
        }
    }
    w.flush()?;
    {
        let policy = w.engine().adaptive().ok_or("engine lost its policy")?;
        if policy.phase() != WorkloadPhase::Churn {
            return Err(format!(
                "churn stream classified as {}",
                policy.phase().name()
            ));
        }
        let c = policy.counters();
        if c.pick_full.get() < 180 {
            return Err(format!(
                "only {} of 192 churn writes picked full images",
                c.pick_full.get()
            ));
        }
        if c.phase_switches.get() < 2 {
            return Err(format!(
                "{} phase switches committed; small-delta and churn expected",
                c.phase_switches.get()
            ));
        }
        // Counterfactual sanity: with a parity-dominated first half,
        // shipping full images everywhere (traditional) must cost
        // strictly more than what the policy shipped, and regret
        // against the per-write oracle stays a sliver of the total.
        let shipped = c.shipped_bytes.get();
        if c.cf_traditional_bytes.get() <= shipped {
            return Err("traditional counterfactual not above adaptive shipped bytes".into());
        }
        if c.regret_bytes.get() * 10 > shipped {
            return Err(format!(
                "regret {} bytes exceeds 10% of shipped {shipped}",
                c.regret_bytes.get()
            ));
        }
    }
    w.check_identity()?;
    w.check_order()?;
    w.check_conservation()?;
    w.check_obs()?;
    Ok(ScenarioOutcome::collect(w.registry(), w.trace_sink()))
}

fn op_err(e: impl std::fmt::Display) -> String {
    format!("unexpected operation failure: {e}")
}

/// A named scenario: a zero-argument run returning the deterministic
/// event-count and trace summaries on success, or the violated
/// invariant.
pub type ScenarioFn = fn() -> Result<ScenarioOutcome, String>;

/// Every named scenario, in a stable order.
pub const SCENARIOS: &[(&str, ScenarioFn)] = &[
    ("link_flap", link_flap),
    ("crash_mid_resync", crash_mid_resync),
    ("reorder", reorder),
    ("dup", dup),
    ("slow_wan", slow_wan),
    ("quorum_loss", quorum_loss),
    ("fold_then_crash", fold_then_crash),
    ("prune_then_rejoin", prune_then_rejoin),
    ("flush_during_link_failure", flush_during_link_failure),
    ("drop_data_frame", drop_data_frame),
    ("lost_ack_resync", lost_ack_resync),
    ("corruption_wire_flip", corruption_wire_flip),
    ("corruption_scrub_repair", corruption_scrub_repair),
    ("corruption_wire_retransmit", corruption_wire_retransmit),
    ("ec_rebuild_one", ec_rebuild_one),
    ("ec_rebuild_two", ec_rebuild_two),
    ("migrate_under_faults", migrate_under_faults),
    ("read_offload_rejoin", read_offload_rejoin),
    ("adaptive_phase_shift", adaptive_phase_shift),
];

/// Runs one scenario by name, returning its event-count summary.
///
/// # Errors
///
/// The invariant violation, or an unknown-name error.
pub fn run_scenario(name: &str) -> Result<String, String> {
    run_scenario_full(name).map(|o| o.events)
}

/// Runs one scenario by name, returning the full
/// [`ScenarioOutcome`] — event-count summary plus the flight
/// recorder's trace summary.
///
/// # Errors
///
/// The invariant violation, or an unknown-name error.
pub fn run_scenario_full(name: &str) -> Result<ScenarioOutcome, String> {
    match SCENARIOS.iter().find(|(n, _)| *n == name) {
        Some((_, f)) => f(),
        None => Err(format!("unknown scenario '{name}'")),
    }
}
