//! Deterministic fault-schedule simulation harness for the PRINS
//! replication stack.
//!
//! The harness drives the *real* engine, pipeline, cluster and resync
//! code — not models of them — under scripted and randomized fault
//! schedules, entirely in virtual time:
//!
//! * [`prins_net::SimNet`] replaces the wire: per-direction delay,
//!   drop, duplicate and reorder faults, all ordered by a single
//!   deterministic event queue that doubles as the virtual clock.
//! * The engine runs in manual-stepping mode on that clock, so a
//!   ten-second WAN schedule costs zero wall time and no test ever
//!   sleeps.
//! * [`world`] wires primaries to replicas and carries the oracle —
//!   the per-LBA history of every content the primary ever held.
//!
//! Invariants checked (see [`world::ClusterWorld::check_invariants`]):
//!
//! 1. **Bit-identity at quiescence** — after links heal and resync
//!    converges, every replica equals the primary byte-for-byte.
//! 2. **Historical states always** — at *every* step, each replica
//!    block holds some state the primary once had. A stale-base XOR or
//!    double-applied parity fabricates a state that never existed and
//!    trips this immediately.
//! 3. **Per-LBA apply order** — the delivery log never shows two
//!    frames for one block arriving out of send order, nor a data
//!    frame delivered twice.
//! 4. **Byte conservation** — what the primary books as replicated
//!    payload equals what the wire meters actually carried.
//! 5. **Resync convergence** — healing plus bounded rejoin attempts
//!    always reach all-online with empty dirty maps.
//!
//! [`scenario`] holds the named schedules (link flap, crash mid-resync,
//! reorder, dup, slow WAN, quorum loss, fold-then-crash,
//! prune-then-rejoin, …); [`fuzz`] expands `u64` seeds into randomized
//! schedules with greedy trace minimization; the `sim-replay` binary
//! replays seeds and runs the checked-in corpus in CI.

#![warn(missing_docs)]

pub mod fuzz;
pub mod scenario;
pub mod world;

pub use fuzz::{
    fuzz_seed, generate, minimize, run_case, run_seed, FuzzCase, FuzzFailure, RunReport, SimOp,
};
pub use scenario::{run_scenario, run_scenario_full, ScenarioOutcome, SCENARIOS};
pub use world::{
    content_hash, ClusterWorld, EcWorld, EngineWorld, EngineWorldConfig, History, ShardWorld,
};
