//! Synthetic ablation workloads for the adaptive policy engine.
//!
//! The four paper workloads all favour the parity family: database
//! pages and filesystem blocks change a few percent per write, so a
//! sparse parity is almost always the cheapest wire encoding. That
//! makes them useless for separating the *other* static strategies —
//! and for stressing a policy that has to pick between them. These two
//! generators fill that gap:
//!
//! * [`TextStore`] rewrites whole documents of English-ish prose: the
//!   parity is dense (a rewrite changes nearly every byte) but the new
//!   content compresses ~3×, so static `Compressed` wins and every
//!   parity-family strategy degenerates to shipping full images.
//! * [`HostileMix`] interleaves three zones with opposite optima —
//!   incompressible small deltas (parity wins), compressible full
//!   rewrites (compression wins), incompressible full rewrites (raw
//!   full images win). No single static strategy is optimal across
//!   zones; a per-region policy can beat all four.

use rand::Rng;

use prins_block::{BlockDevice, BlockError, Lba};
use std::sync::Arc;

use crate::text::prose;

/// Fills `buf` with incompressible bytes from `rng`.
fn random_fill<R: Rng>(rng: &mut R, buf: &mut [u8]) {
    rng.fill_bytes(buf);
}

/// A document store of whole-block prose rewrites.
///
/// Each operation picks a document and rewrites it in place with fresh
/// prose — modelling a save-file loop in an editor or a template
/// renderer. Every write is a dense, highly compressible full-block
/// change.
pub struct TextStore {
    device: Arc<dyn BlockDevice>,
    docs: u64,
    block_bytes: usize,
    ops_run: u64,
}

impl TextStore {
    /// Populates the first `docs` blocks of `device` with prose.
    ///
    /// # Errors
    ///
    /// Propagates device write failures.
    pub fn setup<R: Rng>(
        device: Arc<dyn BlockDevice>,
        docs: u64,
        rng: &mut R,
    ) -> Result<Self, BlockError> {
        let geometry = device.geometry();
        let docs = docs.min(geometry.num_blocks()).max(1);
        let block_bytes = geometry.block_size().bytes();
        for lba in 0..docs {
            let body = prose(rng, block_bytes);
            device.write_block(Lba(lba), body.as_bytes())?;
        }
        device.flush()?;
        Ok(Self {
            device,
            docs,
            block_bytes,
            ops_run: 0,
        })
    }

    /// Runs `ops` full-document rewrites.
    ///
    /// # Errors
    ///
    /// Propagates device write failures.
    pub fn run<R: Rng>(&mut self, ops: usize, rng: &mut R) -> Result<(), BlockError> {
        for _ in 0..ops {
            let lba = Lba(rng.random_range(0..self.docs));
            let body = prose(rng, self.block_bytes);
            self.device.write_block(lba, body.as_bytes())?;
            self.ops_run += 1;
        }
        self.device.flush()
    }

    /// Rewrites performed by [`run`](Self::run) so far.
    pub fn ops_run(&self) -> u64 {
        self.ops_run
    }
}

/// The three access patterns [`HostileMix`] interleaves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Zone {
    /// Random content, a few bytes flipped per write → parity wins.
    SparseBinary,
    /// Prose content, whole block rewritten per write → compression wins.
    RewriteText,
    /// Random content, whole block rewritten per write → raw full wins.
    RewriteBinary,
}

/// A zoned adversarial workload: each third of the device follows one
/// of three access patterns whose optimal wire encodings differ, and
/// operations round-robin across zones so every strategy window sees a
/// mix.
///
/// Zones are contiguous LBA ranges, so a per-region classifier can
/// learn each zone's optimum; a single static strategy cannot.
pub struct HostileMix {
    device: Arc<dyn BlockDevice>,
    zone_blocks: u64,
    block_bytes: usize,
    ops_run: u64,
}

impl HostileMix {
    const ZONES: [Zone; 3] = [Zone::SparseBinary, Zone::RewriteText, Zone::RewriteBinary];

    /// Populates three zones of `zone_blocks` blocks each: zones 0 and
    /// 2 with incompressible bytes, zone 1 with prose.
    ///
    /// # Errors
    ///
    /// Propagates device write failures.
    pub fn setup<R: Rng>(
        device: Arc<dyn BlockDevice>,
        zone_blocks: u64,
        rng: &mut R,
    ) -> Result<Self, BlockError> {
        let geometry = device.geometry();
        let zone_blocks = zone_blocks.min(geometry.num_blocks() / 3).max(1);
        let block_bytes = geometry.block_size().bytes();
        let mut buf = vec![0u8; block_bytes];
        for (index, zone) in Self::ZONES.iter().enumerate() {
            for offset in 0..zone_blocks {
                let lba = Lba(index as u64 * zone_blocks + offset);
                match zone {
                    Zone::RewriteText => {
                        device.write_block(lba, prose(rng, block_bytes).as_bytes())?;
                    }
                    Zone::SparseBinary | Zone::RewriteBinary => {
                        random_fill(rng, &mut buf);
                        device.write_block(lba, &buf)?;
                    }
                }
            }
        }
        device.flush()?;
        Ok(Self {
            device,
            zone_blocks,
            block_bytes,
            ops_run: 0,
        })
    }

    /// Runs `ops` writes, round-robining across the three zones.
    ///
    /// # Errors
    ///
    /// Propagates device read/write failures.
    pub fn run<R: Rng>(&mut self, ops: usize, rng: &mut R) -> Result<(), BlockError> {
        let mut buf = vec![0u8; self.block_bytes];
        for op in 0..ops {
            let zone = Self::ZONES[op % Self::ZONES.len()];
            let base = (op % Self::ZONES.len()) as u64 * self.zone_blocks;
            let lba = Lba(base + rng.random_range(0..self.zone_blocks));
            match zone {
                // In-place metadata-style update: flip a handful of
                // random bytes of an incompressible block.
                Zone::SparseBinary => {
                    self.device.read_block(lba, &mut buf)?;
                    let flips = rng.random_range(2..=8usize);
                    for _ in 0..flips {
                        let at = rng.random_range(0..self.block_bytes);
                        buf[at] ^= rng.random_range(1..=255u8);
                    }
                    self.device.write_block(lba, &buf)?;
                }
                Zone::RewriteText => {
                    self.device
                        .write_block(lba, prose(rng, self.block_bytes).as_bytes())?;
                }
                Zone::RewriteBinary => {
                    random_fill(rng, &mut buf);
                    self.device.write_block(lba, &buf)?;
                }
            }
            self.ops_run += 1;
        }
        self.device.flush()
    }

    /// Writes performed by [`run`](Self::run) so far.
    pub fn ops_run(&self) -> u64 {
        self.ops_run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prins_block::{BlockSize, InstrumentedDevice, MemDevice};
    use prins_compress::{Codec, Lzss};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    #[test]
    fn text_store_writes_are_dense_and_compressible() {
        let device = Arc::new(InstrumentedDevice::new(MemDevice::new(
            BlockSize::kb4(),
            32,
        )));
        let mut r = rng();
        let mut store =
            TextStore::setup(Arc::clone(&device) as Arc<dyn BlockDevice>, 16, &mut r).unwrap();
        let dense = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let packed_small = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let (d, p) = (Arc::clone(&dense), Arc::clone(&packed_small));
        device.set_observer(Box::new(move |_, _, old, new| {
            let changed = old.iter().zip(new).filter(|(a, b)| a != b).count();
            if changed * 2 > new.len() {
                d.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            if Lzss::default().compress(new).len() * 2 < new.len() {
                p.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }));
        store.run(12, &mut r).unwrap();
        assert_eq!(store.ops_run(), 12);
        // Every rewrite changes most of the block and compresses >2x.
        assert_eq!(dense.load(std::sync::atomic::Ordering::Relaxed), 12);
        assert_eq!(packed_small.load(std::sync::atomic::Ordering::Relaxed), 12);
    }

    #[test]
    fn hostile_mix_hits_all_three_zones_with_their_patterns() {
        let device = Arc::new(InstrumentedDevice::new(MemDevice::new(
            BlockSize::kb4(),
            48,
        )));
        let mut r = rng();
        let mut mix =
            HostileMix::setup(Arc::clone(&device) as Arc<dyn BlockDevice>, 16, &mut r).unwrap();
        let zones = Arc::new(std::sync::Mutex::new([0u64; 3]));
        let sparse_in_zone0 = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let (z, s) = (Arc::clone(&zones), Arc::clone(&sparse_in_zone0));
        device.set_observer(Box::new(move |_, lba, old, new| {
            let zone = (lba.0 / 16) as usize;
            z.lock().unwrap()[zone] += 1;
            let changed = old.iter().zip(new).filter(|(a, b)| a != b).count();
            if zone == 0 && changed <= 8 {
                s.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }));
        mix.run(30, &mut r).unwrap();
        let counts = *zones.lock().unwrap();
        assert_eq!(counts, [10, 10, 10], "round-robin across zones");
        assert_eq!(
            sparse_in_zone0.load(std::sync::atomic::Ordering::Relaxed),
            10,
            "zone 0 writes flip at most 8 bytes"
        );
    }
}
