//! One-call workload execution on an instrumented device.

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use rand::SeedableRng;

use prins_block::{
    BlockDevice, BlockError, BlockSize, InstrumentedDevice, MemDevice, WriteObserver,
};
use prins_fs::FsError;
use prins_pagestore::{BufferPool, DbProfile, StoreError};
use prins_parity::DeltaStats;

use crate::fsmicro::{FsMicro, FsMicroConfig};
use crate::report::RunReport;
use crate::synth::{HostileMix, TextStore};
use crate::tpcc::{TpccDatabase, TpccDriver, TpccScale};
use crate::tpcw::{TpcwDriver, TpcwScale};

/// The four workloads of the paper's evaluation, plus two synthetic
/// ablation workloads for the adaptive policy engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Workload {
    /// TPC-C on the Oracle page profile (Figure 4).
    TpccOracle,
    /// TPC-C on the Postgres page profile (Figure 5).
    TpccPostgres,
    /// TPC-W on the MySQL page profile (Figure 6).
    TpcwMysql,
    /// The Ext2 tar micro-benchmark (Figure 7).
    FsMicro,
    /// Whole-document prose rewrites: dense but compressible writes,
    /// the static `Compressed` strategy's home turf.
    Text,
    /// Zoned adversarial mix (sparse-binary / rewrite-text /
    /// rewrite-binary): no static strategy is optimal in every zone.
    HostileMixed,
}

impl Workload {
    /// The paper's workloads in figure order.
    pub const ALL: [Workload; 4] = [
        Workload::TpccOracle,
        Workload::TpccPostgres,
        Workload::TpcwMysql,
        Workload::FsMicro,
    ];

    /// [`ALL`](Self::ALL) plus the synthetic ablation workloads — the
    /// set the adaptive-policy ablation sweeps.
    pub const EXTENDED: [Workload; 6] = [
        Workload::TpccOracle,
        Workload::TpccPostgres,
        Workload::TpcwMysql,
        Workload::FsMicro,
        Workload::Text,
        Workload::HostileMixed,
    ];

    /// Display name ("tpcc-oracle", …).
    pub fn name(self) -> &'static str {
        match self {
            Workload::TpccOracle => "tpcc-oracle",
            Workload::TpccPostgres => "tpcc-postgres",
            Workload::TpcwMysql => "tpcw-mysql",
            Workload::FsMicro => "fs-micro",
            Workload::Text => "text",
            Workload::HostileMixed => "hostile-mixed",
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How big a database/corpus to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScalePreset {
    /// Tiny: for unit tests and doc examples (sub-second).
    Smoke,
    /// Laptop-scale benchmarking: preserves schema shape and skew.
    Bench,
}

/// Configuration for [`run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunConfig {
    /// Device block size (the paper sweeps 4–64 KB).
    pub block_size: BlockSize,
    /// Operations in the measured phase: transactions (TPC-C),
    /// interactions (TPC-W) or tar rounds (fs-micro).
    pub ops: usize,
    /// RNG seed (runs are fully deterministic given the seed).
    pub seed: u64,
    /// Database/corpus scale.
    pub scale: ScalePreset,
}

impl RunConfig {
    /// A sub-second smoke configuration.
    pub fn smoke(block_size: BlockSize) -> Self {
        Self {
            block_size,
            ops: 40,
            seed: 42,
            scale: ScalePreset::Smoke,
        }
    }

    /// A benchmark configuration with `ops` measured operations.
    pub fn bench(block_size: BlockSize, ops: usize) -> Self {
        Self {
            block_size,
            ops,
            seed: 42,
            scale: ScalePreset::Bench,
        }
    }

    /// Same configuration with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn fs_rounds(&self) -> usize {
        match self.scale {
            // The paper runs 5 rounds; smoke keeps it short.
            ScalePreset::Smoke => 2.min(self.ops.max(1)),
            ScalePreset::Bench => 5.max(self.ops.min(20)),
        }
    }
}

/// Errors from workload execution.
#[derive(Debug)]
#[non_exhaustive]
pub enum WorkloadError {
    /// Page-store failure (TPC-C / TPC-W).
    Store(StoreError),
    /// Filesystem failure (fs-micro).
    Fs(FsError),
    /// Raw device failure.
    Block(BlockError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Store(e) => write!(f, "storage engine error: {e}"),
            WorkloadError::Fs(e) => write!(f, "filesystem error: {e}"),
            WorkloadError::Block(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Store(e) => Some(e),
            WorkloadError::Fs(e) => Some(e),
            WorkloadError::Block(e) => Some(e),
        }
    }
}

impl From<StoreError> for WorkloadError {
    fn from(e: StoreError) -> Self {
        WorkloadError::Store(e)
    }
}

impl From<FsError> for WorkloadError {
    fn from(e: FsError) -> Self {
        WorkloadError::Fs(e)
    }
}

impl From<BlockError> for WorkloadError {
    fn from(e: BlockError) -> Self {
        WorkloadError::Block(e)
    }
}

/// Builds the configured workload, runs its measured phase, and streams
/// every block write to `observer`.
///
/// The setup phase (database load / corpus population) happens *before*
/// the observer is installed and the counters are reset — mirroring the
/// paper, which measures replication traffic after the initial sync.
///
/// # Errors
///
/// Propagates substrate failures; see [`WorkloadError`].
pub fn run(
    workload: Workload,
    config: &RunConfig,
    observer: Option<WriteObserver>,
) -> Result<RunReport, WorkloadError> {
    let device = Arc::new(InstrumentedDevice::new(MemDevice::new(
        config.block_size,
        device_blocks(workload, config),
    )));
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);

    // Composite observer: accumulate delta statistics, then forward.
    let delta = Arc::new(Mutex::new(DeltaStats::default()));
    let delta_sink = Arc::clone(&delta);
    let mut user_observer = observer;
    let composite: WriteObserver = Box::new(move |seq, lba, old, new| {
        delta_sink
            .lock()
            .expect("delta mutex")
            .merge(&DeltaStats::measure(old, new));
        if let Some(obs) = user_observer.as_mut() {
            obs(seq, lba, old, new);
        }
    });

    let started;
    let ops_done: u64;
    match workload {
        Workload::TpccOracle | Workload::TpccPostgres => {
            let (profile, scale) = tpcc_setup(workload, config);
            let pool = BufferPool::new(
                Arc::clone(&device) as Arc<dyn BlockDevice>,
                pool_frames(config),
            );
            let db = TpccDatabase::build(&pool, profile, scale, &mut rng)?;
            let mut driver = TpccDriver::new(db);
            device.reset_stats();
            device.set_observer(composite);
            started = Instant::now();
            driver.run(&mut rng, config.ops)?;
            ops_done = driver.total();
        }
        Workload::TpcwMysql => {
            let scale = match config.scale {
                ScalePreset::Smoke => TpcwScale::tiny(),
                ScalePreset::Bench => TpcwScale::bench(),
            };
            let pool = BufferPool::new(
                Arc::clone(&device) as Arc<dyn BlockDevice>,
                pool_frames(config),
            );
            let mut driver = TpcwDriver::build(&pool, scale, &mut rng)?;
            device.reset_stats();
            device.set_observer(composite);
            started = Instant::now();
            driver.run(&mut rng, config.ops)?;
            ops_done = driver.interactions();
        }
        Workload::FsMicro => {
            let fs_config = match config.scale {
                ScalePreset::Smoke => FsMicroConfig::tiny(),
                ScalePreset::Bench => FsMicroConfig::paper(),
            };
            let mut micro = FsMicro::setup(
                Arc::clone(&device) as Arc<dyn BlockDevice>,
                fs_config,
                &mut rng,
            )?;
            device.reset_stats();
            device.set_observer(composite);
            started = Instant::now();
            let rounds = config.fs_rounds();
            micro.run(rounds, &mut rng)?;
            ops_done = micro.rounds_run() as u64;
        }
        Workload::Text => {
            let docs = synth_zone_blocks(config);
            let mut store =
                TextStore::setup(Arc::clone(&device) as Arc<dyn BlockDevice>, docs, &mut rng)?;
            device.reset_stats();
            device.set_observer(composite);
            started = Instant::now();
            store.run(config.ops, &mut rng)?;
            ops_done = store.ops_run();
        }
        Workload::HostileMixed => {
            let zone_blocks = synth_zone_blocks(config);
            let mut mix = HostileMix::setup(
                Arc::clone(&device) as Arc<dyn BlockDevice>,
                zone_blocks,
                &mut rng,
            )?;
            device.reset_stats();
            device.set_observer(composite);
            started = Instant::now();
            mix.run(config.ops, &mut rng)?;
            ops_done = mix.ops_run();
        }
    }
    let duration = started.elapsed();
    device.clear_observer();
    let stats = device.stats();
    let delta_total = *delta.lock().expect("delta mutex");
    Ok(RunReport {
        workload: workload.name().to_string(),
        ops: ops_done,
        device_writes: stats.writes,
        device_bytes_written: stats.bytes_written,
        delta: delta_total,
        duration,
    })
}

fn tpcc_setup(workload: Workload, config: &RunConfig) -> (DbProfile, TpccScale) {
    match (workload, config.scale) {
        (Workload::TpccOracle, ScalePreset::Smoke) => (DbProfile::oracle(), TpccScale::tiny()),
        (Workload::TpccOracle, ScalePreset::Bench) => (DbProfile::oracle(), TpccScale::bench()),
        (Workload::TpccPostgres, ScalePreset::Smoke) => (DbProfile::postgres(), TpccScale::tiny()),
        (Workload::TpccPostgres, ScalePreset::Bench) => {
            // The paper's Postgres setup has twice the warehouses of the
            // Oracle one (10 vs 5); preserve the ratio.
            let mut scale = TpccScale::bench();
            scale.warehouses *= 2;
            (DbProfile::postgres(), scale)
        }
        _ => unreachable!("tpcc_setup called for {workload}"),
    }
}

fn device_blocks(workload: Workload, config: &RunConfig) -> u64 {
    if matches!(workload, Workload::Text | Workload::HostileMixed) {
        // Synthetic drivers address blocks directly; size the device to
        // exactly three zones (TextStore uses the first zone's worth).
        return synth_zone_blocks(config) * 3;
    }
    let bytes: u64 = match (workload, config.scale) {
        (Workload::FsMicro, ScalePreset::Smoke) => 32 << 20,
        (Workload::FsMicro, ScalePreset::Bench) => 128 << 20,
        (_, ScalePreset::Smoke) => 64 << 20,
        (_, ScalePreset::Bench) => 512 << 20,
    };
    bytes / config.block_size.bytes() as u64
}

/// Blocks per zone for the synthetic workloads (documents for
/// [`Workload::Text`], one third of the device for
/// [`Workload::HostileMixed`]) — in blocks, not bytes, so the working
/// set keeps the same *write count* shape across block sizes. Kept at
/// 64+ blocks so each hostile zone spans at least one whole
/// classification region of a default-configured policy engine; zones
/// narrower than a region would blend in one slot and stop measuring
/// per-region adaptation.
fn synth_zone_blocks(config: &RunConfig) -> u64 {
    match config.scale {
        ScalePreset::Smoke => 64,
        ScalePreset::Bench => 128,
    }
}

/// DBMS cache size in page frames: a fixed byte budget so the cache
/// pressure (and thus write-back traffic) is comparable across block
/// sizes.
fn pool_frames(config: &RunConfig) -> usize {
    let cache_bytes: usize = match config.scale {
        ScalePreset::Smoke => 4 << 20,
        ScalePreset::Bench => 16 << 20,
    };
    (cache_bytes / config.block_size.bytes()).max(16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn every_workload_runs_at_smoke_scale() {
        for workload in Workload::EXTENDED {
            let report = run(workload, &RunConfig::smoke(BlockSize::kb4()), None).unwrap();
            assert!(report.device_writes > 0, "{workload}: {report}");
            assert!(report.ops > 0, "{workload}");
            assert!(report.delta.block_bytes > 0, "{workload}");
        }
    }

    #[test]
    fn observer_sees_every_device_write() {
        let seen = Arc::new(AtomicU64::new(0));
        let sink = Arc::clone(&seen);
        let report = run(
            Workload::TpccOracle,
            &RunConfig::smoke(BlockSize::kb8()),
            Some(Box::new(move |_, _, _, _| {
                sink.fetch_add(1, Ordering::Relaxed);
            })),
        )
        .unwrap();
        assert_eq!(seen.load(Ordering::Relaxed), report.device_writes);
    }

    #[test]
    fn runs_are_deterministic_given_the_seed() {
        let config = RunConfig::smoke(BlockSize::kb4());
        let a = run(Workload::TpcwMysql, &config, None).unwrap();
        let b = run(Workload::TpcwMysql, &config, None).unwrap();
        assert_eq!(a.device_writes, b.device_writes);
        assert_eq!(a.device_bytes_written, b.device_bytes_written);
        assert_eq!(a.delta, b.delta);
        // A different seed shifts the write stream.
        let c = run(Workload::TpcwMysql, &config.with_seed(7), None).unwrap();
        assert_ne!(a.delta, c.delta);
    }

    #[test]
    fn change_ratio_is_partial_not_full_block() {
        let report = run(
            Workload::TpccOracle,
            &RunConfig::smoke(BlockSize::kb8()),
            None,
        )
        .unwrap();
        let ratio = report.mean_change_ratio();
        assert!(
            ratio > 0.005 && ratio < 0.6,
            "mean change ratio {ratio:.3} not plausible"
        );
    }
}
