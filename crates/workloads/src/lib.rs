//! Benchmark workloads: TPC-C-lite, TPC-W-lite and the Ext2 tar
//! micro-benchmark — the I/O generators behind Figures 4–7 of the PRINS
//! paper.
//!
//! The paper stresses that I/O *traces* cannot evaluate PRINS because
//! they lack data contents; only workloads that generate realistic
//! contents can. These drivers therefore:
//!
//! * run against the real storage substrates
//!   ([`prins_pagestore`]/[`prins_fs`]) on an
//!   [`InstrumentedDevice`](prins_block::InstrumentedDevice), so every
//!   block write carries genuine before/after images;
//! * generate content per the TPC specifications (NURand, a-strings,
//!   customer last-name syllables, 10 % "ORIGINAL" item data …), so the
//!   5–20 % per-write change ratios and compressibility match what the
//!   paper measured on Oracle/Postgres/MySQL/Ext2.
//!
//! The main entry point is [`run`]: it builds the configured workload,
//! drives it for the configured number of operations, and streams every
//! block write `(seq, lba, old, new)` to an observer — typically a set
//! of replication strategies accumulating wire bytes.
//!
//! # Example
//!
//! ```
//! use prins_block::BlockSize;
//! use prins_workloads::{run, RunConfig, Workload};
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let traffic = Arc::new(AtomicU64::new(0));
//! let sink = Arc::clone(&traffic);
//! let report = run(
//!     Workload::FsMicro,
//!     &RunConfig::smoke(BlockSize::kb4()),
//!     Some(Box::new(move |_seq, _lba, old, new| {
//!         // e.g. feed a replicator; here: count changed bytes.
//!         let changed = old.iter().zip(new).filter(|(a, b)| a != b).count();
//!         sink.fetch_add(changed as u64, Ordering::Relaxed);
//!     })),
//! )
//! .expect("workload runs");
//! assert!(report.device_writes > 0);
//! assert!(traffic.load(Ordering::Relaxed) > 0);
//! ```

mod fsmicro;
mod report;
mod runner;
mod synth;
mod text;
mod tpcc;
mod tpcw;
mod trace;

pub use fsmicro::{FsMicro, FsMicroConfig};
pub use report::RunReport;
pub use runner::{run, RunConfig, ScalePreset, Workload, WorkloadError};
pub use synth::{HostileMix, TextStore};
pub use text::TpccRand;
pub use tpcc::{TpccDatabase, TpccDriver, TpccScale, TxnKind, TxnMix};
pub use tpcw::{TpcwDriver, TpcwScale};
pub use trace::{capture_trace, WriteTrace};
