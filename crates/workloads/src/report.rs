//! Workload run reports.

use std::time::Duration;

use prins_parity::DeltaStats;

/// Summary of one workload run on an instrumented device.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Which workload ran (display name).
    pub workload: String,
    /// Operations executed (transactions / interactions / tar rounds).
    pub ops: u64,
    /// Block writes the device observed during the measured phase.
    pub device_writes: u64,
    /// Bytes written at block level.
    pub device_bytes_written: u64,
    /// Aggregate old-vs-new delta statistics across all writes.
    pub delta: DeltaStats,
    /// Wall-clock duration of the measured phase.
    pub duration: Duration,
}

impl RunReport {
    /// Mean fraction of each block changed per write — the quantity the
    /// paper reports as 5–20 % for real applications.
    pub fn mean_change_ratio(&self) -> f64 {
        self.delta.change_ratio()
    }

    /// Device writes per operation.
    pub fn writes_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.device_writes as f64 / self.ops as f64
        }
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} ops, {} block writes ({} KB), {:.1}% mean change, {:.2?}",
            self.workload,
            self.ops,
            self.device_writes,
            self.device_bytes_written / 1024,
            self.mean_change_ratio() * 100.0,
            self.duration
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let r = RunReport {
            workload: "tpcc".into(),
            ops: 10,
            device_writes: 40,
            device_bytes_written: 40 * 8192,
            delta: DeltaStats {
                block_bytes: 40 * 8192,
                changed_bytes: 40 * 819,
                changed_extents: 40,
            },
            duration: Duration::from_millis(5),
        };
        assert!((r.writes_per_op() - 4.0).abs() < 1e-12);
        assert!((r.mean_change_ratio() - 0.1).abs() < 1e-3);
        assert!(r.to_string().contains("tpcc"));
    }
}
