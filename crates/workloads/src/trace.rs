//! Write-trace capture and replay.
//!
//! The paper argues ordinary I/O traces are useless for evaluating PRINS
//! because they carry no data contents. This module defines a trace
//! format that *does*: for each write it stores the delta (as a sparse
//! parity) plus, on first touch of an LBA, the block's prior image —
//! enough to reconstruct every `(old, new)` pair exactly. A captured
//! trace can be replayed against any set of replication strategies
//! without re-running the database, making experiments repeatable and
//! shareable.
//!
//! Wire format (all integers LEB128 varints):
//!
//! ```text
//! trace  := magic(4) block_size record*
//! record := tag(u8) lba [first? old-bytes(block_size)] sparse-parity
//!           tag 0: subsequent write    tag 1: first touch of the lba
//! ```
//!
//! # Example
//!
//! ```
//! use prins_block::BlockSize;
//! use prins_workloads::{capture_trace, RunConfig, Workload};
//!
//! let trace = capture_trace(Workload::FsMicro, &RunConfig::smoke(BlockSize::kb4()))
//!     .expect("capture");
//! assert!(trace.len() > 0);
//! // Replay the identical write stream.
//! let mut writes = 0;
//! trace.replay(|_lba, old, new| {
//!     assert_eq!(old.len(), new.len());
//!     writes += 1;
//! });
//! assert_eq!(writes, trace.len());
//! ```

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use prins_block::{BlockSize, Lba};
use prins_parity::{decode_varint, encode_varint, forward_parity, SparseCodec, SparseParity};

use crate::runner::{run, RunConfig, Workload, WorkloadError};

const MAGIC: &[u8; 4] = b"PTR1";

enum Record {
    First {
        lba: u64,
        old: Vec<u8>,
        parity: SparseParity,
    },
    Next {
        lba: u64,
        parity: SparseParity,
    },
}

/// A content-carrying block write trace.
pub struct WriteTrace {
    block_size: BlockSize,
    records: Vec<Record>,
}

impl WriteTrace {
    /// Creates an empty trace for blocks of `block_size`.
    pub fn new(block_size: BlockSize) -> Self {
        Self {
            block_size,
            records: Vec::new(),
        }
    }

    /// The trace's block size.
    pub fn block_size(&self) -> BlockSize {
        self.block_size
    }

    /// Number of recorded writes.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends one observed write. `first_touch` marks the first time
    /// this LBA appears (its old image is stored verbatim).
    ///
    /// # Panics
    ///
    /// Panics if the image lengths differ from the trace block size.
    pub fn record(&mut self, lba: Lba, old: &[u8], new: &[u8], first_touch: bool) {
        assert_eq!(old.len(), self.block_size.bytes(), "old image size");
        assert_eq!(new.len(), self.block_size.bytes(), "new image size");
        let parity = SparseCodec::default().encode(&forward_parity(old, new));
        self.records.push(if first_touch {
            Record::First {
                lba: lba.index(),
                old: old.to_vec(),
                parity,
            }
        } else {
            Record::Next {
                lba: lba.index(),
                parity,
            }
        });
    }

    /// Replays the trace, invoking `f(lba, old, new)` for every write in
    /// order with fully reconstructed images.
    pub fn replay<F: FnMut(Lba, &[u8], &[u8])>(&self, mut f: F) {
        let mut current: HashMap<u64, Vec<u8>> = HashMap::new();
        for record in &self.records {
            let (lba, parity, old) = match record {
                Record::First { lba, old, parity } => {
                    current.insert(*lba, old.clone());
                    (*lba, parity, old.clone())
                }
                Record::Next { lba, parity } => {
                    let old = current
                        .get(lba)
                        .expect("trace invariant: Next after First")
                        .clone();
                    (*lba, parity, old)
                }
            };
            let mut new = old.clone();
            parity.apply_to(&mut new);
            f(Lba(lba), &old, &new);
            current.insert(lba, new);
        }
    }

    /// Serialized size without allocating.
    pub fn encoded_size(&self) -> usize {
        self.to_bytes().len()
    }

    /// Serializes the trace.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        encode_varint(&mut out, self.block_size.bytes() as u64);
        for record in &self.records {
            match record {
                Record::First { lba, old, parity } => {
                    out.push(1);
                    encode_varint(&mut out, *lba);
                    out.extend_from_slice(old);
                    out.extend_from_slice(&parity.to_bytes());
                }
                Record::Next { lba, parity } => {
                    out.push(0);
                    encode_varint(&mut out, *lba);
                    out.extend_from_slice(&parity.to_bytes());
                }
            }
        }
        out
    }

    /// Parses a trace serialized by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed element.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() < 5 || &bytes[..4] != MAGIC {
            return Err("not a PRINS trace (bad magic)".into());
        }
        let mut pos = 4usize;
        let (bs, used) = decode_varint(&bytes[pos..]).ok_or("truncated block size")?;
        pos += used;
        let block_size =
            BlockSize::new(bs as u32).map_err(|e| format!("invalid block size: {e}"))?;
        let bs = block_size.bytes();
        let codec = SparseCodec::default();
        let mut records = Vec::new();
        let mut seen: std::collections::HashSet<u64> = Default::default();
        while pos < bytes.len() {
            let tag = bytes[pos];
            pos += 1;
            let (lba, used) = decode_varint(&bytes[pos..]).ok_or("truncated lba")?;
            pos += used;
            let old = if tag == 1 {
                if pos + bs > bytes.len() {
                    return Err("truncated first-touch image".into());
                }
                let old = bytes[pos..pos + bs].to_vec();
                pos += bs;
                Some(old)
            } else if tag == 0 {
                None
            } else {
                return Err(format!("unknown record tag {tag}"));
            };
            // Sparse parity is self-delimiting; decode then re-measure.
            let parity = codec
                .decode(&bytes[pos..], bs)
                .map_err(|e| format!("bad parity at offset {pos}: {e}"))?;
            pos += parity.wire_size();
            match old {
                Some(old) => {
                    seen.insert(lba);
                    records.push(Record::First { lba, old, parity });
                }
                None => {
                    if !seen.contains(&lba) {
                        return Err(format!("lba {lba} written before its first-touch record"));
                    }
                    records.push(Record::Next { lba, parity });
                }
            }
        }
        Ok(Self {
            block_size,
            records,
        })
    }
}

impl std::fmt::Debug for WriteTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteTrace")
            .field("block_size", &self.block_size)
            .field("records", &self.records.len())
            .finish()
    }
}

/// Runs `workload` and captures its measured-phase write stream as a
/// [`WriteTrace`].
///
/// # Errors
///
/// Propagates workload failures.
pub fn capture_trace(workload: Workload, config: &RunConfig) -> Result<WriteTrace, WorkloadError> {
    let trace = Arc::new(Mutex::new(WriteTrace::new(config.block_size)));
    let seen = Arc::new(Mutex::new(std::collections::HashSet::<u64>::new()));
    let sink = Arc::clone(&trace);
    let seen_sink = Arc::clone(&seen);
    run(
        workload,
        config,
        Some(Box::new(move |_seq, lba, old, new| {
            let first = seen_sink.lock().expect("seen mutex").insert(lba.index());
            sink.lock()
                .expect("trace mutex")
                .record(lba, old, new, first);
        })),
    )?;
    let trace = Arc::try_unwrap(trace)
        .expect("observer dropped")
        .into_inner()
        .expect("trace mutex");
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    #[allow(clippy::type_complexity)]
    fn sample_trace() -> (WriteTrace, Vec<(Lba, Vec<u8>, Vec<u8>)>) {
        let bs = BlockSize::new(512).unwrap();
        let mut trace = WriteTrace::new(bs);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let mut current: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut expected = Vec::new();
        for _ in 0..50 {
            let lba = rng.random_range(0..8u64);
            let old = current.entry(lba).or_insert_with(|| {
                let mut b = vec![0u8; 512];
                rng.fill_bytes(&mut b);
                b
            });
            let old_copy = old.clone();
            let mut new = old_copy.clone();
            let at = rng.random_range(0..480);
            for b in &mut new[at..at + 16] {
                *b = rng.random();
            }
            let first = expected
                .iter()
                .all(|(l, _, _): &(Lba, _, _)| l.index() != lba);
            trace.record(Lba(lba), &old_copy, &new, first);
            expected.push((Lba(lba), old_copy, new.clone()));
            current.insert(lba, new);
        }
        (trace, expected)
    }

    #[test]
    fn replay_reconstructs_every_write_exactly() {
        let (trace, expected) = sample_trace();
        let mut i = 0;
        trace.replay(|lba, old, new| {
            assert_eq!(lba, expected[i].0, "write {i}");
            assert_eq!(old, &expected[i].1[..], "write {i} old");
            assert_eq!(new, &expected[i].2[..], "write {i} new");
            i += 1;
        });
        assert_eq!(i, expected.len());
    }

    #[test]
    fn serialization_roundtrips() {
        let (trace, expected) = sample_trace();
        let bytes = trace.to_bytes();
        let back = WriteTrace::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), trace.len());
        let mut i = 0;
        back.replay(|lba, old, new| {
            assert_eq!(
                (lba, old, new),
                (expected[i].0, &expected[i].1[..], &expected[i].2[..])
            );
            i += 1;
        });
    }

    #[test]
    fn trace_is_far_smaller_than_raw_images() {
        let (trace, expected) = sample_trace();
        let raw: usize = expected.iter().map(|(_, o, n)| o.len() + n.len()).sum();
        assert!(
            trace.encoded_size() * 3 < raw,
            "trace {} vs raw {raw}",
            trace.encoded_size()
        );
    }

    #[test]
    fn malformed_traces_are_rejected() {
        assert!(WriteTrace::from_bytes(b"nope").is_err());
        let (trace, _) = sample_trace();
        let bytes = trace.to_bytes();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(WriteTrace::from_bytes(&bad).is_err());
        // Truncations anywhere must not panic.
        for cut in [5usize, 20, bytes.len() - 1] {
            assert!(WriteTrace::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
        // A Next record without a First is rejected.
        let mut orphan = Vec::new();
        orphan.extend_from_slice(MAGIC);
        encode_varint(&mut orphan, 512);
        orphan.push(0); // tag Next
        encode_varint(&mut orphan, 3);
        orphan.extend_from_slice(&SparseCodec::default().encode(&vec![0u8; 512]).to_bytes());
        assert!(WriteTrace::from_bytes(&orphan).is_err());
    }

    #[test]
    fn captured_workload_trace_replays_consistently() {
        let config = crate::RunConfig::smoke(BlockSize::kb4());
        let trace = capture_trace(Workload::FsMicro, &config).unwrap();
        assert!(!trace.is_empty());
        // Round-trip through bytes, then verify replay still works and
        // deltas are partial.
        let back = WriteTrace::from_bytes(&trace.to_bytes()).unwrap();
        let mut changed = 0usize;
        let mut total = 0usize;
        back.replay(|_, old, new| {
            changed += old.iter().zip(new).filter(|(a, b)| a != b).count();
            total += old.len();
        });
        assert!(changed > 0);
        assert!(changed < total, "writes must be partial");
    }
}
