//! TPC-C schema, scaling and initial database population.

use std::collections::VecDeque;

use rand::Rng;

use prins_pagestore::{BTree, BufferPool, DbProfile, RecordId, Row, StoreError, Table, Value};

use crate::text::{a_string, data_string, n_string, TpccRand};

use super::keys;

/// Cardinalities for one TPC-C database.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TpccScale {
    /// Number of warehouses (the TPC-C scale factor W).
    pub warehouses: u64,
    /// Districts per warehouse (spec: 10).
    pub districts: u64,
    /// Customers per district (spec: 3000).
    pub customers: u64,
    /// Items in the catalog (spec: 100 000).
    pub items: u64,
}

impl TpccScale {
    /// The paper's Oracle setup: 5 warehouses (25 users).
    pub fn paper_oracle() -> Self {
        Self {
            warehouses: 5,
            districts: 10,
            customers: 3000,
            items: 100_000,
        }
    }

    /// The paper's Postgres setup: 10 warehouses (50 users).
    pub fn paper_postgres() -> Self {
        Self {
            warehouses: 10,
            districts: 10,
            customers: 3000,
            items: 100_000,
        }
    }

    /// A laptop-scale configuration preserving the schema and access
    /// skew (used by benches; documented in EXPERIMENTS.md).
    pub fn bench() -> Self {
        Self {
            warehouses: 2,
            districts: 10,
            customers: 120,
            items: 2_000,
        }
    }

    /// A minimal configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            warehouses: 1,
            districts: 2,
            customers: 20,
            items: 100,
        }
    }

    /// Rows the initial load creates (excluding history/orders).
    pub fn base_rows(&self) -> u64 {
        let w = self.warehouses;
        w + w * self.districts + w * self.districts * self.customers + self.items + w * self.items
    }
}

/// One table plus its primary-key B-tree.
pub(crate) struct Indexed {
    pub table: Table,
    pub index: BTree,
}

impl Indexed {
    pub(crate) fn create(pool: &BufferPool, profile: DbProfile) -> Result<Self, StoreError> {
        Ok(Self {
            table: Table::with_profile(pool, profile)?,
            index: BTree::create(pool)?,
        })
    }

    pub fn insert(&mut self, key: u64, row: &Row) -> Result<RecordId, StoreError> {
        let rid = self.table.insert(row)?;
        self.index.insert(key, rid)?;
        Ok(rid)
    }

    pub fn get(&self, key: u64) -> Result<Row, StoreError> {
        let rid = self
            .index
            .get(key)?
            .ok_or(StoreError::KeyNotFound { key })?;
        self.table.get(rid)
    }

    /// Updates the row at `key`, maintaining the index if the row
    /// migrated pages.
    pub fn update(&mut self, key: u64, row: &Row) -> Result<(), StoreError> {
        let rid = self
            .index
            .get(key)?
            .ok_or(StoreError::KeyNotFound { key })?;
        let new_rid = self.table.update(rid, row)?;
        if new_rid != rid {
            self.index.update(key, new_rid)?;
        }
        Ok(())
    }

    pub fn delete(&mut self, key: u64) -> Result<(), StoreError> {
        let rid = self
            .index
            .get(key)?
            .ok_or(StoreError::KeyNotFound { key })?;
        self.table.delete(rid)?;
        self.index.delete(key)
    }
}

/// The populated TPC-C database.
///
/// Construct with [`TpccDatabase::build`]; drive with
/// [`TpccDriver`](super::TpccDriver).
pub struct TpccDatabase {
    pub(crate) pool: BufferPool,
    pub(crate) scale: TpccScale,
    pub(crate) rand: TpccRand,
    pub(crate) warehouse: Indexed,
    pub(crate) district: Indexed,
    pub(crate) customer: Indexed,
    pub(crate) history: Table,
    pub(crate) order: Indexed,
    pub(crate) new_order: Indexed,
    pub(crate) order_line: Indexed,
    pub(crate) item: Indexed,
    pub(crate) stock: Indexed,
    /// Undelivered orders per district key (the NEW-ORDER queue).
    pub(crate) pending: std::collections::HashMap<u64, VecDeque<u64>>,
}

impl TpccDatabase {
    /// Creates and populates a database per `scale` on `pool`.
    ///
    /// # Errors
    ///
    /// Propagates storage failures (most commonly
    /// [`StoreError::DeviceFull`] when the device is sized too small for
    /// the scale).
    pub fn build<R: Rng>(
        pool: &BufferPool,
        profile: DbProfile,
        scale: TpccScale,
        rng: &mut R,
    ) -> Result<Self, StoreError> {
        let rand = TpccRand::new(rng);
        let mut db = Self {
            pool: pool.clone(),
            scale,
            rand,
            warehouse: Indexed::create(pool, profile)?,
            district: Indexed::create(pool, profile)?,
            customer: Indexed::create(pool, profile)?,
            history: Table::with_profile(pool, profile)?,
            order: Indexed::create(pool, profile)?,
            new_order: Indexed::create(pool, profile)?,
            order_line: Indexed::create(pool, profile)?,
            item: Indexed::create(pool, profile)?,
            stock: Indexed::create(pool, profile)?,
            pending: Default::default(),
        };
        db.load_items(rng)?;
        db.load_warehouses(rng)?;
        pool.flush_all()?;
        Ok(db)
    }

    /// The database's scale.
    pub fn scale(&self) -> TpccScale {
        self.scale
    }

    fn load_items<R: Rng>(&mut self, rng: &mut R) -> Result<(), StoreError> {
        for i in 1..=self.scale.items {
            let row = Row::new(vec![
                Value::U64(i),                                             // i_id
                Value::U64(rng.random_range(1..=10_000)),                  // i_im_id
                Value::Str(a_string(rng, 14, 24)),                         // i_name
                Value::F64(rng.random_range(100..=10_000) as f64 / 100.0), // i_price
                Value::Str(data_string(rng)),                              // i_data
            ]);
            self.item.insert(keys::wh(i), &row)?;
        }
        Ok(())
    }

    fn address<R: Rng>(rng: &mut R) -> [Value; 5] {
        [
            Value::Str(a_string(rng, 10, 20)),                // street_1
            Value::Str(a_string(rng, 10, 20)),                // street_2
            Value::Str(a_string(rng, 10, 20)),                // city
            Value::Str(a_string(rng, 2, 2)),                  // state
            Value::Str(format!("{}11111", n_string(rng, 4))), // zip
        ]
    }

    fn load_warehouses<R: Rng>(&mut self, rng: &mut R) -> Result<(), StoreError> {
        let scale = self.scale;
        for w in 1..=scale.warehouses {
            let mut values = vec![Value::U64(w), Value::Str(a_string(rng, 6, 10))];
            values.extend(Self::address(rng));
            values.push(Value::F64(rng.random_range(0..=2000) as f64 / 10_000.0)); // w_tax
            values.push(Value::F64(300_000.0)); // w_ytd
            self.warehouse.insert(keys::wh(w), &Row::new(values))?;

            for d in 1..=scale.districts {
                let mut values = vec![
                    Value::U64(d),
                    Value::U64(w),
                    Value::Str(a_string(rng, 6, 10)),
                ];
                values.extend(Self::address(rng));
                values.push(Value::F64(rng.random_range(0..=2000) as f64 / 10_000.0)); // d_tax
                values.push(Value::F64(30_000.0)); // d_ytd
                values.push(Value::U64(1)); // d_next_o_id
                self.district.insert(keys::dist(w, d), &Row::new(values))?;

                for c in 1..=scale.customers {
                    self.load_customer(rng, w, d, c)?;
                }
                self.pending.insert(keys::dist(w, d), VecDeque::new());
            }
            for i in 1..=scale.items {
                self.load_stock(rng, w, i)?;
            }
        }
        Ok(())
    }

    fn load_customer<R: Rng>(
        &mut self,
        rng: &mut R,
        w: u64,
        d: u64,
        c: u64,
    ) -> Result<(), StoreError> {
        let last = if c <= 1000 {
            TpccRand::last_name(c - 1)
        } else {
            TpccRand::last_name(self.rand.nurand(rng, 255, 0, 999))
        };
        let credit = if rng.random_range(0..10u8) == 0 {
            "BC"
        } else {
            "GC"
        };
        let mut values = vec![
            Value::U64(c),
            Value::U64(d),
            Value::U64(w),
            Value::Str(a_string(rng, 8, 16)), // first
            Value::Str("OE".into()),          // middle
            Value::Str(last),
        ];
        values.extend(Self::address(rng));
        values.extend([
            Value::Str(n_string(rng, 16)),                            // phone
            Value::U64(0),                                            // since (txn clock)
            Value::Str(credit.into()),                                // credit
            Value::F64(50_000.0),                                     // credit_lim
            Value::F64(rng.random_range(0..=5000) as f64 / 10_000.0), // discount
            Value::F64(-10.0),                                        // balance
            Value::F64(10.0),                                         // ytd_payment
            Value::U64(1),                                            // payment_cnt
            Value::U64(0),                                            // delivery_cnt
            Value::Str(a_string(rng, 300, 500)),                      // c_data
        ]);
        self.customer
            .insert(keys::cust(w, d, c), &Row::new(values))?;
        Ok(())
    }

    fn load_stock<R: Rng>(&mut self, rng: &mut R, w: u64, i: u64) -> Result<(), StoreError> {
        let mut values = vec![
            Value::U64(i),
            Value::U64(w),
            Value::U64(rng.random_range(10..=100)), // s_quantity
        ];
        for _ in 0..10 {
            values.push(Value::Str(a_string(rng, 24, 24))); // s_dist_XX
        }
        values.extend([
            Value::U64(0),                // s_ytd
            Value::U64(0),                // s_order_cnt
            Value::U64(0),                // s_remote_cnt
            Value::Str(data_string(rng)), // s_data
        ]);
        self.stock.insert(keys::stock(w, i), &Row::new(values))?;
        Ok(())
    }
}

impl std::fmt::Debug for TpccDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TpccDatabase")
            .field("scale", &self.scale)
            .field("customers", &self.customer.table.len())
            .field("items", &self.item.table.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prins_block::{BlockSize, MemDevice};
    use rand::SeedableRng;
    use std::sync::Arc;

    fn build_tiny() -> TpccDatabase {
        let pool = BufferPool::new(Arc::new(MemDevice::new(BlockSize::kb8(), 4096)), 256);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        TpccDatabase::build(&pool, DbProfile::oracle(), TpccScale::tiny(), &mut rng).unwrap()
    }

    #[test]
    fn load_populates_all_cardinalities() {
        let db = build_tiny();
        let s = db.scale();
        assert_eq!(db.warehouse.table.len(), s.warehouses);
        assert_eq!(db.district.table.len(), s.warehouses * s.districts);
        assert_eq!(
            db.customer.table.len(),
            s.warehouses * s.districts * s.customers
        );
        assert_eq!(db.item.table.len(), s.items);
        assert_eq!(db.stock.table.len(), s.warehouses * s.items);
    }

    #[test]
    fn rows_resolve_through_indexes() {
        let db = build_tiny();
        let cust = db.customer.get(keys::cust(1, 1, 5)).unwrap();
        assert_eq!(cust.values()[0], Value::U64(5));
        assert_eq!(cust.values()[1], Value::U64(1));
        let item = db.item.get(42).unwrap();
        assert_eq!(item.values()[0], Value::U64(42));
        let district = db.district.get(keys::dist(1, 2)).unwrap();
        assert_eq!(district.values()[0], Value::U64(2));
        // d_next_o_id starts at 1.
        assert_eq!(district.values()[10], Value::U64(1));
    }

    #[test]
    fn indexed_update_maintains_index_across_migration() {
        let pool = BufferPool::new(
            Arc::new(MemDevice::new(BlockSize::new(512).unwrap(), 2048)),
            64,
        );
        let mut ix = Indexed::create(&pool, DbProfile::oracle()).unwrap();
        let mut rids = Vec::new();
        for k in 0..6u64 {
            rids.push(
                ix.insert(k, &Row::new(vec![Value::U64(k), Value::Str("aa".into())]))
                    .unwrap(),
            );
        }
        // Grow row 0 so it migrates off its 512-byte page.
        let big = Row::new(vec![Value::U64(0), Value::Str("B".repeat(300))]);
        ix.update(0, &big).unwrap();
        let back = ix.get(0).unwrap();
        assert_eq!(back.values()[1], Value::Str("B".repeat(300)));
    }

    #[test]
    fn scale_row_arithmetic() {
        let s = TpccScale::paper_oracle();
        assert_eq!(
            s.base_rows(),
            5 + 50 + 5 * 10 * 3000 + 100_000 + 5 * 100_000
        );
    }
}
