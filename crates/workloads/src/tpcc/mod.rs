//! TPC-C-lite: the OLTP workload of Figures 4 and 5.
//!
//! Implements the nine-table TPC-C schema, spec-conformant data
//! generation (NURand selection, a-strings, syllable last names, 10 %
//! "ORIGINAL" stock data) and the five-transaction mix (New-Order 45 %,
//! Payment 43 %, Order-Status / Delivery / Stock-Level 4 % each), all
//! running on the `prins-pagestore` engine so every transaction turns
//! into realistic page-level block writes.
//!
//! Simplifications versus the full specification, none of which affect
//! block-write content realism: single-threaded execution (terminals
//! only pace wall-clock time, which we do not model), payment customer
//! selection always by id (no last-name path), and no think times.

pub(crate) mod db;
mod driver;

pub use db::{TpccDatabase, TpccScale};
pub use driver::{TpccDriver, TxnKind, TxnMix};

/// Key-packing helpers: composite TPC-C keys into `u64` B-tree keys.
pub(crate) mod keys {
    /// Warehouse key.
    pub fn wh(w: u64) -> u64 {
        w
    }

    /// District key.
    pub fn dist(w: u64, d: u64) -> u64 {
        w * 100 + d
    }

    /// Customer key.
    pub fn cust(w: u64, d: u64, c: u64) -> u64 {
        dist(w, d) * 100_000 + c
    }

    /// Order key.
    pub fn order(w: u64, d: u64, o: u64) -> u64 {
        dist(w, d) * 100_000_000 + o
    }

    /// Order-line key.
    pub fn order_line(w: u64, d: u64, o: u64, line: u64) -> u64 {
        order(w, d, o) * 100 + line
    }

    /// Stock key.
    pub fn stock(w: u64, i: u64) -> u64 {
        w * 1_000_000 + i
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn keys_are_injective_across_plausible_ranges() {
            let mut seen = std::collections::HashSet::new();
            for w in 1..=3u64 {
                for d in 1..=10 {
                    for o in 1..=50 {
                        for l in 1..=15 {
                            assert!(seen.insert(order_line(w, d, o, l)));
                        }
                    }
                }
            }
        }

        #[test]
        fn stock_and_order_spaces_do_not_rely_on_overlap() {
            // Different key spaces go into different B-trees, but keys
            // must stay within u64 at paper scale.
            let k = order_line(10, 10, 99_999_999, 15);
            assert!(k < u64::MAX / 2);
            assert!(stock(10, 100_000) < u64::MAX);
        }
    }
}
