//! The five TPC-C transactions and the transaction mix.

use rand::Rng;

use prins_pagestore::{Row, StoreError, Value};

use super::db::TpccDatabase;
use super::keys;

/// The five TPC-C transaction types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TxnKind {
    /// New-Order (45 % of the mix).
    NewOrder,
    /// Payment (43 %).
    Payment,
    /// Order-Status (4 %, read-only).
    OrderStatus,
    /// Delivery (4 %).
    Delivery,
    /// Stock-Level (4 %, read-only).
    StockLevel,
}

impl TxnKind {
    /// All kinds in mix order.
    pub const ALL: [TxnKind; 5] = [
        TxnKind::NewOrder,
        TxnKind::Payment,
        TxnKind::OrderStatus,
        TxnKind::Delivery,
        TxnKind::StockLevel,
    ];
}

/// Weighted transaction mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxnMix {
    weights: [u32; 5],
}

impl TxnMix {
    /// The specification mix: 45/43/4/4/4.
    pub fn spec() -> Self {
        Self {
            weights: [45, 43, 4, 4, 4],
        }
    }

    /// A custom mix (weights need not sum to 100).
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero.
    pub fn new(weights: [u32; 5]) -> Self {
        assert!(weights.iter().sum::<u32>() > 0, "mix needs weight");
        Self { weights }
    }

    /// Draws a transaction kind.
    pub fn draw<R: Rng>(&self, rng: &mut R) -> TxnKind {
        let total: u32 = self.weights.iter().sum();
        let mut roll = rng.random_range(0..total);
        for (kind, &w) in TxnKind::ALL.iter().zip(&self.weights) {
            if roll < w {
                return *kind;
            }
            roll -= w;
        }
        TxnKind::StockLevel
    }
}

impl Default for TxnMix {
    fn default() -> Self {
        Self::spec()
    }
}

/// Executes TPC-C transactions against a [`TpccDatabase`].
///
/// The driver checkpoints (flushes the buffer pool) every
/// `checkpoint_interval` transactions, which is when dirty pages become
/// device writes — the write stream the replication experiments
/// measure.
pub struct TpccDriver {
    db: TpccDatabase,
    clock: u64,
    counts: [u64; 5],
    mix: TxnMix,
    checkpoint_interval: usize,
    since_checkpoint: usize,
}

impl TpccDriver {
    /// Wraps a populated database with the spec mix and a checkpoint
    /// every 10 transactions.
    pub fn new(db: TpccDatabase) -> Self {
        Self {
            db,
            clock: 0,
            counts: [0; 5],
            mix: TxnMix::spec(),
            checkpoint_interval: 10,
            since_checkpoint: 0,
        }
    }

    /// Overrides the transaction mix.
    pub fn with_mix(mut self, mix: TxnMix) -> Self {
        self.mix = mix;
        self
    }

    /// Overrides the checkpoint interval (transactions between buffer
    /// pool flushes).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn with_checkpoint_interval(mut self, interval: usize) -> Self {
        assert!(interval > 0, "checkpoint interval must be positive");
        self.checkpoint_interval = interval;
        self
    }

    /// Transactions executed so far, by kind.
    pub fn counts(&self) -> [(TxnKind, u64); 5] {
        let mut out = [(TxnKind::NewOrder, 0); 5];
        for (i, kind) in TxnKind::ALL.iter().enumerate() {
            out[i] = (*kind, self.counts[i]);
        }
        out
    }

    /// Total transactions executed.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The wrapped database.
    pub fn database(&self) -> &TpccDatabase {
        &self.db
    }

    /// Runs `n` transactions drawn from the mix.
    ///
    /// # Errors
    ///
    /// Propagates storage failures; the database may be mid-transaction
    /// on error (there is no abort/rollback — the workload only needs
    /// the write stream).
    pub fn run<R: Rng>(&mut self, rng: &mut R, n: usize) -> Result<(), StoreError> {
        for _ in 0..n {
            self.run_one(rng)?;
        }
        // Final checkpoint so trailing writes reach the device.
        self.db.pool.flush_all()?;
        self.since_checkpoint = 0;
        Ok(())
    }

    /// Runs one transaction, returning its kind.
    ///
    /// # Errors
    ///
    /// As [`run`](Self::run).
    pub fn run_one<R: Rng>(&mut self, rng: &mut R) -> Result<TxnKind, StoreError> {
        let kind = self.mix.draw(rng);
        self.clock += 1;
        match kind {
            TxnKind::NewOrder => self.new_order(rng)?,
            TxnKind::Payment => self.payment(rng)?,
            TxnKind::OrderStatus => self.order_status(rng)?,
            TxnKind::Delivery => self.delivery(rng)?,
            TxnKind::StockLevel => self.stock_level(rng)?,
        }
        let idx = TxnKind::ALL.iter().position(|k| *k == kind).unwrap();
        self.counts[idx] += 1;
        self.since_checkpoint += 1;
        if self.since_checkpoint >= self.checkpoint_interval {
            self.db.pool.flush_all()?;
            self.since_checkpoint = 0;
        }
        Ok(kind)
    }

    fn pick_warehouse<R: Rng>(&self, rng: &mut R) -> u64 {
        rng.random_range(1..=self.db.scale.warehouses)
    }

    fn pick_district<R: Rng>(&self, rng: &mut R) -> u64 {
        rng.random_range(1..=self.db.scale.districts)
    }

    // ------------------------------------------------------------------
    // New-Order (clause 2.4)
    // ------------------------------------------------------------------

    fn new_order<R: Rng>(&mut self, rng: &mut R) -> Result<(), StoreError> {
        let scale = self.db.scale;
        let w = self.pick_warehouse(rng);
        let d = self.pick_district(rng);
        let c = self.db.rand.customer_id(rng, scale.customers);

        // Read warehouse tax, customer discount (read-only here).
        let _warehouse = self.db.warehouse.get(keys::wh(w))?;
        let _customer = self.db.customer.get(keys::cust(w, d, c))?;

        // District: take o_id, bump d_next_o_id.
        let mut district = self.db.district.get(keys::dist(w, d))?;
        let o_id = district.values()[10].as_key();
        district.values_mut()[10] = Value::U64(o_id + 1);
        self.db.district.update(keys::dist(w, d), &district)?;

        let ol_cnt = rng.random_range(5..=15u64);
        let all_local = scale.warehouses == 1 || rng.random_range(0..100u8) > 0;
        for line in 1..=ol_cnt {
            let i = self.db.rand.item_id(rng, scale.items);
            let supply_w = if all_local || scale.warehouses == 1 {
                w
            } else {
                // 1 % remote line: any other warehouse.
                let mut other = rng.random_range(1..=scale.warehouses);
                if other == w {
                    other = other % scale.warehouses + 1;
                }
                other
            };
            let qty = rng.random_range(1..=10u64);
            let item = self.db.item.get(i)?;
            let price = match &item.values()[3] {
                Value::F64(p) => *p,
                _ => 0.0,
            };

            // Stock read-modify-write (the dominant write source).
            let mut stock = self.db.stock.get(keys::stock(supply_w, i))?;
            let s_qty = stock.values()[2].as_key();
            let new_qty = if s_qty >= qty + 10 {
                s_qty - qty
            } else {
                s_qty + 91 - qty
            };
            stock.values_mut()[2] = Value::U64(new_qty);
            stock.values_mut()[13] = Value::U64(stock.values()[13].as_key() + qty); // ytd
            stock.values_mut()[14] = Value::U64(stock.values()[14].as_key() + 1); // order_cnt
            if supply_w != w {
                stock.values_mut()[15] = Value::U64(stock.values()[15].as_key() + 1);
            }
            let dist_info = match &stock.values()[2 + d as usize] {
                Value::Str(s) => s.clone(),
                _ => String::new(),
            };
            self.db.stock.update(keys::stock(supply_w, i), &stock)?;

            let ol = Row::new(vec![
                Value::U64(o_id),
                Value::U64(d),
                Value::U64(w),
                Value::U64(line),
                Value::U64(i),
                Value::U64(supply_w),
                Value::U64(0), // delivery_d (null)
                Value::U64(qty),
                Value::F64(price * qty as f64),
                Value::Str(dist_info),
            ]);
            self.db
                .order_line
                .insert(keys::order_line(w, d, o_id, line), &ol)?;
        }

        let order = Row::new(vec![
            Value::U64(o_id),
            Value::U64(d),
            Value::U64(w),
            Value::U64(c),
            Value::U64(self.clock), // entry date
            Value::U64(0),          // carrier (null)
            Value::U64(ol_cnt),
            Value::U64(all_local as u64),
        ]);
        self.db.order.insert(keys::order(w, d, o_id), &order)?;
        let no = Row::new(vec![Value::U64(o_id), Value::U64(d), Value::U64(w)]);
        self.db.new_order.insert(keys::order(w, d, o_id), &no)?;
        self.db
            .pending
            .get_mut(&keys::dist(w, d))
            .expect("district queue exists")
            .push_back(o_id);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Payment (clause 2.5)
    // ------------------------------------------------------------------

    fn payment<R: Rng>(&mut self, rng: &mut R) -> Result<(), StoreError> {
        let scale = self.db.scale;
        let w = self.pick_warehouse(rng);
        let d = self.pick_district(rng);
        let c = self.db.rand.customer_id(rng, scale.customers);
        let amount = rng.random_range(100..=500_000) as f64 / 100.0;

        let mut warehouse = self.db.warehouse.get(keys::wh(w))?;
        let w_ytd = match warehouse.values()[8] {
            Value::F64(v) => v,
            _ => 0.0,
        };
        warehouse.values_mut()[8] = Value::F64(w_ytd + amount);
        self.db.warehouse.update(keys::wh(w), &warehouse)?;

        let mut district = self.db.district.get(keys::dist(w, d))?;
        let d_ytd = match district.values()[9] {
            Value::F64(v) => v,
            _ => 0.0,
        };
        district.values_mut()[9] = Value::F64(d_ytd + amount);
        self.db.district.update(keys::dist(w, d), &district)?;

        let mut customer = self.db.customer.get(keys::cust(w, d, c))?;
        let balance = match customer.values()[16] {
            Value::F64(v) => v,
            _ => 0.0,
        };
        customer.values_mut()[16] = Value::F64(balance - amount);
        let ytd = match customer.values()[17] {
            Value::F64(v) => v,
            _ => 0.0,
        };
        customer.values_mut()[17] = Value::F64(ytd + amount);
        customer.values_mut()[18] = Value::U64(customer.values()[18].as_key() + 1);
        // Bad-credit customers get payment info prepended to c_data
        // (truncated to 500), per clause 2.5.2.2 — a larger in-page
        // delta than the numeric fields alone.
        if customer.values()[13] == Value::Str("BC".into()) {
            if let Value::Str(data) = &customer.values()[20] {
                let mut new_data = format!("{c},{d},{w},{d},{w},{amount:.2};{data}");
                new_data.truncate(500);
                customer.values_mut()[20] = Value::Str(new_data);
            }
        }
        self.db.customer.update(keys::cust(w, d, c), &customer)?;

        let history = Row::new(vec![
            Value::U64(c),
            Value::U64(d),
            Value::U64(w),
            Value::U64(d),
            Value::U64(w),
            Value::U64(self.clock),
            Value::F64(amount),
            Value::Str(format!("payment w{w} d{d}")),
        ]);
        self.db.history.insert(&history)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Order-Status (clause 2.6, read-only)
    // ------------------------------------------------------------------

    fn order_status<R: Rng>(&mut self, rng: &mut R) -> Result<(), StoreError> {
        let scale = self.db.scale;
        let w = self.pick_warehouse(rng);
        let d = self.pick_district(rng);
        let c = self.db.rand.customer_id(rng, scale.customers);
        let _customer = self.db.customer.get(keys::cust(w, d, c))?;

        // Most recent order of the district, if any.
        let district = self.db.district.get(keys::dist(w, d))?;
        let next_o = district.values()[10].as_key();
        if next_o > 1 {
            let o_id = next_o - 1;
            if let Ok(order) = self.db.order.get(keys::order(w, d, o_id)) {
                let ol_cnt = order.values()[6].as_key();
                for line in 1..=ol_cnt {
                    let _ = self.db.order_line.get(keys::order_line(w, d, o_id, line))?;
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Delivery (clause 2.7)
    // ------------------------------------------------------------------

    fn delivery<R: Rng>(&mut self, rng: &mut R) -> Result<(), StoreError> {
        let scale = self.db.scale;
        let w = self.pick_warehouse(rng);
        let carrier = rng.random_range(1..=10u64);
        for d in 1..=scale.districts {
            let Some(o_id) = self
                .db
                .pending
                .get_mut(&keys::dist(w, d))
                .and_then(|q| q.pop_front())
            else {
                continue;
            };
            self.db.new_order.delete(keys::order(w, d, o_id))?;

            let mut order = self.db.order.get(keys::order(w, d, o_id))?;
            let c = order.values()[3].as_key();
            let ol_cnt = order.values()[6].as_key();
            order.values_mut()[5] = Value::U64(carrier);
            self.db.order.update(keys::order(w, d, o_id), &order)?;

            let mut total = 0.0;
            for line in 1..=ol_cnt {
                let key = keys::order_line(w, d, o_id, line);
                let mut ol = self.db.order_line.get(key)?;
                ol.values_mut()[6] = Value::U64(self.clock); // delivery date
                if let Value::F64(amount) = ol.values()[8] {
                    total += amount;
                }
                self.db.order_line.update(key, &ol)?;
            }

            let mut customer = self.db.customer.get(keys::cust(w, d, c))?;
            if let Value::F64(balance) = customer.values()[16] {
                customer.values_mut()[16] = Value::F64(balance + total);
            }
            customer.values_mut()[19] = Value::U64(customer.values()[19].as_key() + 1);
            self.db.customer.update(keys::cust(w, d, c), &customer)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Stock-Level (clause 2.8, read-only)
    // ------------------------------------------------------------------

    fn stock_level<R: Rng>(&mut self, rng: &mut R) -> Result<(), StoreError> {
        let w = self.pick_warehouse(rng);
        let d = self.pick_district(rng);
        let threshold = rng.random_range(10..=20u64);
        let district = self.db.district.get(keys::dist(w, d))?;
        let next_o = district.values()[10].as_key();
        let first = next_o.saturating_sub(20).max(1);
        let mut low = 0u64;
        for o_id in first..next_o {
            let Ok(order) = self.db.order.get(keys::order(w, d, o_id)) else {
                continue;
            };
            let ol_cnt = order.values()[6].as_key();
            for line in 1..=ol_cnt {
                let ol = self.db.order_line.get(keys::order_line(w, d, o_id, line))?;
                let i = ol.values()[4].as_key();
                let stock = self.db.stock.get(keys::stock(w, i))?;
                if stock.values()[2].as_key() < threshold {
                    low += 1;
                }
            }
        }
        let _ = low;
        Ok(())
    }
}

impl std::fmt::Debug for TpccDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TpccDriver")
            .field("total", &self.total())
            .field("clock", &self.clock)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcc::{TpccDatabase, TpccScale};
    use prins_block::{BlockDevice, BlockSize, InstrumentedDevice, MemDevice};
    use prins_pagestore::{BufferPool, DbProfile};
    use rand::SeedableRng;
    use std::sync::Arc;

    fn driver() -> (
        TpccDriver,
        Arc<InstrumentedDevice<MemDevice>>,
        rand::rngs::StdRng,
    ) {
        let device = Arc::new(InstrumentedDevice::new(MemDevice::new(
            BlockSize::kb8(),
            8192,
        )));
        let pool = BufferPool::new(Arc::clone(&device) as Arc<dyn BlockDevice>, 128);
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let db =
            TpccDatabase::build(&pool, DbProfile::oracle(), TpccScale::tiny(), &mut rng).unwrap();
        device.reset_stats(); // measure only the transaction phase
        (TpccDriver::new(db), device, rng)
    }

    #[test]
    fn mix_follows_weights() {
        let mix = TxnMix::spec();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..10_000 {
            *counts.entry(mix.draw(&mut rng)).or_insert(0u32) += 1;
        }
        assert!(counts[&TxnKind::NewOrder] > 4000);
        assert!(counts[&TxnKind::Payment] > 3800);
        assert!(counts[&TxnKind::Delivery] < 800);
    }

    #[test]
    fn transactions_run_and_produce_device_writes() {
        let (mut driver, device, mut rng) = driver();
        driver.run(&mut rng, 200).unwrap();
        assert_eq!(driver.total(), 200);
        let stats = device.stats();
        assert!(stats.writes > 20, "expected device writes, got {stats:?}");
        // All five kinds occurred.
        for (kind, count) in driver.counts() {
            if matches!(kind, TxnKind::NewOrder | TxnKind::Payment) {
                assert!(count > 50, "{kind:?} ran {count} times");
            }
        }
    }

    #[test]
    fn new_order_advances_district_counter() {
        let (mut driver, _device, mut rng) = driver();
        let before: u64 = (1..=2)
            .map(|d| driver.db.district.get(keys::dist(1, d)).unwrap().values()[10].as_key())
            .sum();
        driver = driver.with_mix(TxnMix::new([1, 0, 0, 0, 0]));
        driver.run(&mut rng, 20).unwrap();
        let after: u64 = (1..=2)
            .map(|d| driver.db.district.get(keys::dist(1, d)).unwrap().values()[10].as_key())
            .sum();
        assert_eq!(after - before, 20);
        assert_eq!(driver.db.order.table.len(), 20);
        assert_eq!(driver.db.new_order.table.len(), 20);
        assert!(driver.db.order_line.table.len() >= 100); // >= 5 lines each
    }

    #[test]
    fn delivery_drains_new_orders() {
        let (mut driver, _device, mut rng) = driver();
        driver = driver.with_mix(TxnMix::new([1, 0, 0, 0, 0]));
        driver.run(&mut rng, 30).unwrap();
        let pending_before: usize = driver.db.pending.values().map(|q| q.len()).sum();
        assert_eq!(pending_before, 30);
        driver = driver.with_mix(TxnMix::new([0, 0, 0, 1, 0]));
        driver.run(&mut rng, 30).unwrap();
        let pending_after: usize = driver.db.pending.values().map(|q| q.len()).sum();
        assert_eq!(pending_after, 0);
        assert_eq!(driver.db.new_order.table.len(), 0);
    }

    #[test]
    fn payment_accumulates_ytd() {
        let (mut driver, _device, mut rng) = driver();
        driver = driver.with_mix(TxnMix::new([0, 1, 0, 0, 0]));
        driver.run(&mut rng, 25).unwrap();
        let warehouse = driver.db.warehouse.get(keys::wh(1)).unwrap();
        if let Value::F64(ytd) = warehouse.values()[8] {
            assert!(ytd > 300_000.0, "w_ytd grew to {ytd}");
        } else {
            panic!("w_ytd missing");
        }
        assert_eq!(driver.db.history.len(), 25);
    }

    #[test]
    fn write_deltas_are_in_the_papers_band() {
        // The paper's premise: 5-20% of a block changes per write. Page
        // checkpoints batch several row updates, so allow a wider band
        // but insist writes are partial, not full-block.
        let (mut driver, device, mut rng) = driver();
        device.set_tracing(true);
        driver.run(&mut rng, 150).unwrap();
        let trace = device.take_trace();
        assert!(!trace.is_empty());
        let mut stats = prins_parity::DeltaStats::default();
        for rec in &trace {
            stats.merge(&prins_parity::DeltaStats::measure(&rec.old, &rec.new));
        }
        let ratio = stats.change_ratio();
        assert!(
            ratio > 0.01 && ratio < 0.45,
            "mean change ratio {:.3} outside plausible band",
            ratio
        );
    }
}
