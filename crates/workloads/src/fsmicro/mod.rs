//! The Ext2 filesystem micro-benchmark of Figure 7.
//!
//! Paper §3.2: "The micro-benchmark chooses five directories randomly on
//! Ext2 file system and creates an archive file using the tar command.
//! We ran the tar command five times. Each time before the tar command
//! is run, files in the directories are randomly selected and randomly
//! changed."
//!
//! This driver builds a populated filesystem of English-ish text files
//! (text compresses much better than database pages — the paper calls
//! this out when comparing Figure 7 to Figures 4–6), then alternates
//! mutation rounds with tar runs.

use std::sync::Arc;

use rand::Rng;

use prins_block::BlockDevice;
use prins_fs::{tar, Fs, FsError};

use crate::text::prose;

/// Shape of the micro-benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FsMicroConfig {
    /// Total directories created.
    pub dirs: usize,
    /// Files per directory.
    pub files_per_dir: usize,
    /// Approximate bytes per file.
    pub file_size: usize,
    /// Directories archived per round (paper: 5).
    pub dirs_per_round: usize,
}

impl FsMicroConfig {
    /// The paper's setup: archives of 5 random directories.
    pub fn paper() -> Self {
        Self {
            dirs: 12,
            files_per_dir: 8,
            file_size: 24 * 1024,
            dirs_per_round: 5,
        }
    }

    /// Minimal configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            dirs: 3,
            files_per_dir: 2,
            file_size: 2 * 1024,
            dirs_per_round: 2,
        }
    }

    /// Bytes of file payload the initial population writes.
    pub fn corpus_bytes(&self) -> usize {
        self.dirs * self.files_per_dir * self.file_size
    }
}

/// The micro-benchmark driver: a formatted, populated filesystem plus
/// the mutate-then-tar round logic.
///
/// The five archived directories are chosen once (randomly) at setup
/// and re-archived into the *same* archive file every round, as the
/// paper describes. Successive archives are therefore mostly identical
/// — small file edits produce small archive deltas — which is precisely
/// the redundancy PRINS's parity exposes and full-block replication
/// retransmits wholesale.
pub struct FsMicro {
    fs: Fs,
    config: FsMicroConfig,
    archived_dirs: Vec<usize>,
    rounds_run: usize,
}

impl FsMicro {
    /// Formats `device` and populates the text-file corpus (the setup
    /// phase, excluded from traffic measurement).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures (most commonly
    /// [`FsError::NoSpace`] for undersized devices).
    pub fn setup<R: Rng>(
        device: Arc<dyn BlockDevice>,
        config: FsMicroConfig,
        rng: &mut R,
    ) -> Result<Self, FsError> {
        let fs = Fs::format(device, 4096)?;
        for d in 0..config.dirs {
            let dir = format!("/dir{d}");
            fs.create_dir(&dir)?;
            for f in 0..config.files_per_dir {
                let size = config.file_size / 2 + rng.random_range(0..config.file_size.max(2));
                fs.write_file(&format!("{dir}/file{f}.txt"), prose(rng, size).as_bytes())?;
            }
        }
        let archived_dirs = pick_dirs(&config, rng);
        Ok(Self {
            fs,
            config,
            archived_dirs,
            rounds_run: 0,
        })
    }

    /// The filesystem under test.
    pub fn fs(&self) -> &Fs {
        &self.fs
    }

    /// Rounds executed so far.
    pub fn rounds_run(&self) -> usize {
        self.rounds_run
    }

    /// Runs `rounds` mutate-then-tar rounds.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn run<R: Rng>(&mut self, rounds: usize, rng: &mut R) -> Result<(), FsError> {
        for _ in 0..rounds {
            self.run_round(rng)?;
        }
        Ok(())
    }

    /// One round: randomly change files, then re-archive the chosen
    /// directories over the previous archive.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn run_round<R: Rng>(&mut self, rng: &mut R) -> Result<(), FsError> {
        self.mutate(rng)?;
        let names: Vec<String> = self
            .archived_dirs
            .iter()
            .map(|d| format!("/dir{d}"))
            .collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        tar::create_over(&self.fs, &refs, "/archive.tar")?;
        self.rounds_run += 1;
        Ok(())
    }

    /// Randomly select and randomly change files, as the paper
    /// describes. Edits are in-place (size-preserving) with an
    /// occasional small append: text files edited by applications keep
    /// their length far more often than they grow, and tar's 512-byte
    /// record padding absorbs small growth — so successive archives of
    /// the same tree stay byte-aligned, the redundancy PRINS exploits.
    fn mutate<R: Rng>(&self, rng: &mut R) -> Result<(), FsError> {
        for d in 0..self.config.dirs {
            for f in 0..self.config.files_per_dir {
                if rng.random_range(0..2u8) == 0 {
                    continue; // not selected this round
                }
                let path = format!("/dir{d}/file{f}.txt");
                let size = self.fs.metadata(&path)?.size;
                let edits = rng.random_range(1..=4usize);
                for _ in 0..edits {
                    let patch_len = rng.random_range(40..400).min(size.max(1) as usize);
                    let patch = prose(rng, patch_len);
                    // In place: never past EOF, so the size is stable.
                    let at = rng.random_range(0..(size - patch_len as u64).max(1));
                    self.fs.write_at(&path, at, patch.as_bytes())?;
                }
                if rng.random_range(0..8u8) == 0 {
                    // Occasional growth, bounded by the file's tar
                    // padding so the archive's record layout is stable
                    // (a single grown record would displace every
                    // later byte of the archive).
                    let pad_room = (512 - (size % 512) as usize) % 512;
                    if pad_room > 8 {
                        let tail_len = rng.random_range(1..pad_room);
                        let tail = prose(rng, tail_len);
                        self.fs.append(&path, tail.as_bytes())?;
                    }
                }
            }
        }
        Ok(())
    }
}

fn pick_dirs<R: Rng>(config: &FsMicroConfig, rng: &mut R) -> Vec<usize> {
    let mut all: Vec<usize> = (0..config.dirs).collect();
    for i in (1..all.len()).rev() {
        let j = rng.random_range(0..=i);
        all.swap(i, j);
    }
    all.truncate(config.dirs_per_round.min(config.dirs));
    all
}

impl std::fmt::Debug for FsMicro {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FsMicro")
            .field("config", &self.config)
            .field("rounds_run", &self.rounds_run)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prins_block::{BlockSize, InstrumentedDevice, MemDevice};
    use rand::SeedableRng;

    fn device(blocks: u64) -> Arc<dyn BlockDevice> {
        Arc::new(MemDevice::new(BlockSize::kb4(), blocks))
    }

    #[test]
    fn rounds_create_archives() {
        let dev = device(32_768);
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let mut micro = FsMicro::setup(Arc::clone(&dev), FsMicroConfig::tiny(), &mut rng).unwrap();
        micro.run(3, &mut rng).unwrap();
        assert_eq!(micro.rounds_run(), 3);
        assert!(micro.fs().exists("/archive.tar"));
        assert!(!tar::list(micro.fs(), "/archive.tar").unwrap().is_empty());
    }

    #[test]
    fn mutation_rounds_write_blocks() {
        let inst = Arc::new(InstrumentedDevice::new(MemDevice::new(
            BlockSize::kb4(),
            32_768,
        )));
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let mut micro = FsMicro::setup(
            Arc::clone(&inst) as Arc<dyn BlockDevice>,
            FsMicroConfig::tiny(),
            &mut rng,
        )
        .unwrap();
        inst.reset_stats();
        micro.run_round(&mut rng).unwrap();
        assert!(inst.stats().writes > 5, "{:?}", inst.stats());
    }

    #[test]
    fn pick_dirs_returns_distinct_dirs() {
        let config = FsMicroConfig::paper();
        let mut rng = rand::rngs::StdRng::seed_from_u64(15);
        for _ in 0..20 {
            let picks = pick_dirs(&config, &mut rng);
            assert_eq!(picks.len(), 5);
            let set: std::collections::HashSet<_> = picks.iter().collect();
            assert_eq!(set.len(), 5);
        }
    }

    #[test]
    fn successive_archives_share_most_content() {
        // The property Figure 7 rests on: re-tarring lightly edited
        // files overwrites the archive with mostly identical bytes.
        let dev = device(65_536);
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut micro = FsMicro::setup(Arc::clone(&dev), FsMicroConfig::tiny(), &mut rng).unwrap();
        micro.run_round(&mut rng).unwrap();
        let first = micro.fs().read_file("/archive.tar").unwrap();
        micro.run_round(&mut rng).unwrap();
        let second = micro.fs().read_file("/archive.tar").unwrap();
        let n = first.len().min(second.len());
        let changed = first[..n]
            .iter()
            .zip(&second[..n])
            .filter(|(a, b)| a != b)
            .count();
        let ratio = changed as f64 / n as f64;
        assert!(
            ratio < 0.6,
            "successive archives differ in {:.0}% of bytes",
            ratio * 100.0
        );
    }

    #[test]
    fn corpus_bytes_arithmetic() {
        assert_eq!(FsMicroConfig::tiny().corpus_bytes(), 3 * 2 * 2048);
    }
}
