//! TPC-style random content generation.
//!
//! Implements the generators the TPC-C specification (clause 4.3.2)
//! defines: a-strings (alphanumeric), n-strings (numeric), the NURand
//! non-uniform distribution, and the 16-syllable customer last names —
//! plus an English-ish text generator for filesystem contents. Content
//! realism matters here: the compressed baseline's ratio and PRINS's
//! delta sizes both depend on it.

use rand::Rng;

/// TPC-C last-name syllables (clause 4.3.2.3).
const SYLLABLES: [&str; 10] = [
    "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
];

/// Words used for file contents and DBMS comment fields.
const WORDS: [&str; 32] = [
    "the",
    "of",
    "replication",
    "storage",
    "parity",
    "block",
    "network",
    "system",
    "data",
    "write",
    "node",
    "remote",
    "disk",
    "performance",
    "traffic",
    "bandwidth",
    "internet",
    "protocol",
    "server",
    "database",
    "transaction",
    "customer",
    "order",
    "payment",
    "warehouse",
    "district",
    "stock",
    "item",
    "delivery",
    "history",
    "level",
    "queue",
];

/// Random-content helpers parameterized by any RNG.
///
/// The constant `C` values for NURand are fixed per run, as the spec
/// requires.
#[derive(Clone, Debug)]
pub struct TpccRand {
    c_last: u64,
    c_cust: u64,
    c_item: u64,
}

impl TpccRand {
    /// Draws the per-run NURand constants.
    pub fn new<R: Rng>(rng: &mut R) -> Self {
        Self {
            c_last: rng.random_range(0..256),
            c_cust: rng.random_range(0..1024),
            c_item: rng.random_range(0..8192),
        }
    }

    /// TPC-C NURand(A, x, y): non-uniform customer/item selection.
    pub fn nurand<R: Rng>(&self, rng: &mut R, a: u64, x: u64, y: u64) -> u64 {
        let c = match a {
            255 => self.c_last,
            1023 => self.c_cust,
            8191 => self.c_item,
            _ => 0,
        };
        (((rng.random_range(0..=a) | rng.random_range(x..=y)) + c) % (y - x + 1)) + x
    }

    /// Customer id 1..=n with the spec's skew.
    pub fn customer_id<R: Rng>(&self, rng: &mut R, n: u64) -> u64 {
        self.nurand(rng, 1023, 1, n.max(1))
    }

    /// Item id 1..=n with the spec's skew.
    pub fn item_id<R: Rng>(&self, rng: &mut R, n: u64) -> u64 {
        self.nurand(rng, 8191, 1, n.max(1))
    }

    /// The spec's 16-syllable last name for a number in 0..=999.
    pub fn last_name(num: u64) -> String {
        let n = num % 1000;
        format!(
            "{}{}{}",
            SYLLABLES[(n / 100) as usize],
            SYLLABLES[((n / 10) % 10) as usize],
            SYLLABLES[(n % 10) as usize]
        )
    }
}

/// Alphanumeric "a-string" of random length in `[lo, hi]`.
pub fn a_string<R: Rng>(rng: &mut R, lo: usize, hi: usize) -> String {
    let len = rng.random_range(lo..=hi.max(lo));
    (0..len)
        .map(|_| {
            let c = rng.random_range(0..62u8);
            match c {
                0..=25 => (b'a' + c) as char,
                26..=51 => (b'A' + c - 26) as char,
                _ => (b'0' + c - 52) as char,
            }
        })
        .collect()
}

/// Numeric "n-string" of exactly `len` digits.
pub fn n_string<R: Rng>(rng: &mut R, len: usize) -> String {
    (0..len)
        .map(|_| (b'0' + rng.random_range(0..10u8)) as char)
        .collect()
}

/// English-ish filler text of roughly `bytes` bytes (word-sampled, so
/// it compresses like real text — the paper notes the micro-benchmark's
/// text files compress better than database pages).
pub fn prose<R: Rng>(rng: &mut R, bytes: usize) -> String {
    let mut out = String::with_capacity(bytes + 16);
    while out.len() < bytes {
        out.push_str(WORDS[rng.random_range(0..WORDS.len())]);
        if rng.random_range(0..12u8) == 0 {
            out.push_str(".\n");
        } else {
            out.push(' ');
        }
    }
    out.truncate(bytes);
    out
}

/// TPC-C item/stock data field: 26..50 a-string chars, 10 % containing
/// the literal "ORIGINAL" (clause 4.3.3.1).
pub fn data_string<R: Rng>(rng: &mut R) -> String {
    let mut s = a_string(rng, 26, 50);
    if rng.random_range(0..10u8) == 0 {
        let at = rng.random_range(0..s.len().saturating_sub(8).max(1));
        s.replace_range(at..at + 8, "ORIGINAL");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1)
    }

    #[test]
    fn nurand_stays_in_range_and_is_skewed() {
        let mut r = rng();
        let tr = TpccRand::new(&mut r);
        let mut counts = vec![0u32; 101];
        for _ in 0..10_000 {
            let v = tr.nurand(&mut r, 255, 1, 100);
            assert!((1..=100).contains(&v));
            counts[v as usize] += 1;
        }
        // Non-uniform: the most popular value should be well above the
        // uniform expectation of 100.
        let max = counts.iter().max().unwrap();
        assert!(*max > 200, "nurand looks uniform: max bucket {max}");
    }

    #[test]
    fn last_names_follow_the_syllable_table() {
        assert_eq!(TpccRand::last_name(0), "BARBARBAR");
        assert_eq!(TpccRand::last_name(371), "PRICALLYOUGHT");
        assert_eq!(TpccRand::last_name(999), "EINGEINGEING");
        assert_eq!(TpccRand::last_name(1999), "EINGEINGEING");
    }

    #[test]
    fn string_generators_respect_bounds() {
        let mut r = rng();
        for _ in 0..100 {
            let s = a_string(&mut r, 14, 24);
            assert!((14..=24).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric()));
        }
        assert_eq!(n_string(&mut r, 9).len(), 9);
        assert!(n_string(&mut r, 9).chars().all(|c| c.is_ascii_digit()));
    }

    #[test]
    fn prose_is_compressible_text() {
        use prins_compress::{Codec, Lzss};
        let mut r = rng();
        let text = prose(&mut r, 8192);
        assert_eq!(text.len(), 8192);
        let packed = Lzss::default().compress(text.as_bytes());
        assert!(
            packed.len() * 3 < text.len(),
            "prose should compress >3x, got {}/{}",
            packed.len(),
            text.len()
        );
    }

    #[test]
    fn data_string_sometimes_contains_original() {
        let mut r = rng();
        let hits = (0..1000)
            .filter(|_| data_string(&mut r).contains("ORIGINAL"))
            .count();
        assert!((50..200).contains(&hits), "got {hits} / 1000");
    }
}
