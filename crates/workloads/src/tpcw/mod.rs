//! TPC-W-lite: the transactional web benchmark of Figure 6.
//!
//! The paper runs the UW-Madison Java TPC-W (an on-line bookstore) with
//! Tomcat in front of MySQL: 30 emulated browsers, 10 000 rows in the
//! ITEM table. The web tier only shapes the *mix* of database work, so
//! this driver reproduces the database effects of the TPC-W shopping
//! mix directly:
//!
//! * browsing interactions → skewed item/customer reads,
//! * shopping-cart interactions → per-browser in-memory carts plus item
//!   reads,
//! * buy-confirm → order + order-line + credit-card rows inserted,
//!   item stock decremented, customer balance updated,
//! * customer registration → customer row inserted,
//! * admin item update → item row rewritten (price/data).
//!
//! Thirty emulated browsers cycle through sessions exactly as the
//! benchmark's EBs do; content generation follows the spec's field
//! shapes (names, ISBNs, 100–500 char descriptions) so page deltas and
//! compressibility are realistic.

use rand::Rng;

use prins_pagestore::{BufferPool, DbProfile, Row, StoreError, Table, Value};

use crate::text::{a_string, n_string, prose, TpccRand};
use crate::tpcc::db::Indexed;

/// Cardinalities for the bookstore.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TpcwScale {
    /// Rows in the ITEM table (paper: 10 000).
    pub items: u64,
    /// Pre-loaded customers.
    pub customers: u64,
    /// Emulated browsers (paper: 30).
    pub browsers: usize,
}

impl TpcwScale {
    /// The paper's configuration: 10 000 items, 30 EBs.
    pub fn paper() -> Self {
        Self {
            items: 10_000,
            customers: 2_880,
            browsers: 30,
        }
    }

    /// Laptop-scale: same shape, fewer rows.
    pub fn bench() -> Self {
        Self {
            items: 1_000,
            customers: 288,
            browsers: 30,
        }
    }

    /// Minimal configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            items: 50,
            customers: 20,
            browsers: 4,
        }
    }
}

struct CartLine {
    item: u64,
    qty: u64,
}

/// Drives the TPC-W-lite bookstore.
pub struct TpcwDriver {
    pool: BufferPool,
    scale: TpcwScale,
    rand: TpccRand,
    item: Indexed,
    customer: Indexed,
    orders: Table,
    order_line: Table,
    cc_xacts: Table,
    carts: Vec<Vec<CartLine>>,
    next_order: u64,
    next_customer: u64,
    clock: u64,
    interactions: u64,
    checkpoint_interval: usize,
    since_checkpoint: usize,
}

impl TpcwDriver {
    /// Builds and populates the bookstore.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn build<R: Rng>(
        pool: &BufferPool,
        scale: TpcwScale,
        rng: &mut R,
    ) -> Result<Self, StoreError> {
        // MySQL profile: the paper's TPC-W backend.
        let profile = DbProfile::mysql();
        let mut driver = Self {
            pool: pool.clone(),
            scale,
            rand: TpccRand::new(rng),
            item: Indexed::create(pool, profile)?,
            customer: Indexed::create(pool, profile)?,
            orders: Table::with_profile(pool, profile)?,
            order_line: Table::with_profile(pool, profile)?,
            cc_xacts: Table::with_profile(pool, profile)?,
            carts: (0..scale.browsers).map(|_| Vec::new()).collect(),
            next_order: 1,
            next_customer: scale.customers + 1,
            clock: 0,
            interactions: 0,
            checkpoint_interval: 20,
            since_checkpoint: 0,
        };
        for i in 1..=scale.items {
            let row = item_row(rng, i);
            driver.item.insert(i, &row)?;
        }
        for c in 1..=scale.customers {
            let row = customer_row(rng, c);
            driver.customer.insert(c, &row)?;
        }
        pool.flush_all()?;
        Ok(driver)
    }

    /// Interactions executed so far.
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Orders placed so far.
    pub fn orders_placed(&self) -> u64 {
        self.next_order - 1
    }

    /// Runs `n` browser interactions (round-robin over the EBs),
    /// flushing the pool at checkpoint boundaries and at the end.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn run<R: Rng>(&mut self, rng: &mut R, n: usize) -> Result<(), StoreError> {
        for k in 0..n {
            let browser = k % self.scale.browsers;
            self.interact(rng, browser)?;
            self.since_checkpoint += 1;
            if self.since_checkpoint >= self.checkpoint_interval {
                self.pool.flush_all()?;
                self.since_checkpoint = 0;
            }
        }
        self.pool.flush_all()?;
        self.since_checkpoint = 0;
        Ok(())
    }

    /// Runs one interaction for `browser`, drawn from the shopping mix.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn interact<R: Rng>(&mut self, rng: &mut R, browser: usize) -> Result<(), StoreError> {
        self.clock += 1;
        self.interactions += 1;
        match rng.random_range(0..100u8) {
            // ~80 % browsing (home/search/product detail/best sellers).
            0..=79 => self.browse(rng)?,
            // ~10 % shopping cart.
            80..=89 => self.shopping_cart(rng, browser)?,
            // ~5 % buy confirm.
            90..=94 => self.buy_confirm(rng, browser)?,
            // ~3 % customer registration.
            95..=97 => self.register(rng)?,
            // ~2 % admin update.
            _ => self.admin_update(rng)?,
        }
        Ok(())
    }

    fn pick_item<R: Rng>(&self, rng: &mut R) -> u64 {
        self.rand.item_id(rng, self.scale.items)
    }

    fn browse<R: Rng>(&mut self, rng: &mut R) -> Result<(), StoreError> {
        for _ in 0..rng.random_range(1..=5usize) {
            let _ = self.item.get(self.pick_item(rng))?;
        }
        if self.scale.customers > 0 && rng.random_range(0..2u8) == 0 {
            let c = rng.random_range(1..=self.scale.customers.max(1));
            let _ = self.customer.get(c);
        }
        Ok(())
    }

    fn shopping_cart<R: Rng>(&mut self, rng: &mut R, browser: usize) -> Result<(), StoreError> {
        let item = self.pick_item(rng);
        let _ = self.item.get(item)?;
        let cart = &mut self.carts[browser];
        if let Some(line) = cart.iter_mut().find(|l| l.item == item) {
            line.qty += 1;
        } else {
            cart.push(CartLine { item, qty: 1 });
        }
        if cart.len() > 8 {
            cart.remove(0);
        }
        Ok(())
    }

    fn buy_confirm<R: Rng>(&mut self, rng: &mut R, browser: usize) -> Result<(), StoreError> {
        if self.carts[browser].is_empty() {
            // Empty cart: grab something first (the EB would have).
            self.shopping_cart(rng, browser)?;
        }
        let lines = std::mem::take(&mut self.carts[browser]);
        let o_id = self.next_order;
        self.next_order += 1;
        let c_id = rng.random_range(1..=self.scale.customers.max(1));

        let mut subtotal = 0.0;
        for (n, line) in lines.iter().enumerate() {
            let mut item = self.item.get(line.item)?;
            let cost = match item.values()[5] {
                Value::F64(v) => v,
                _ => 0.0,
            };
            subtotal += cost * line.qty as f64;
            // Decrement stock, replenishing like the spec when low.
            let stock = item.values()[6].as_key();
            let new_stock = if stock >= line.qty + 10 {
                stock - line.qty
            } else {
                stock + 21 - line.qty
            };
            item.values_mut()[6] = Value::U64(new_stock);
            self.item.update(line.item, &item)?;

            self.order_line.insert(&Row::new(vec![
                Value::U64(n as u64 + 1),
                Value::U64(o_id),
                Value::U64(line.item),
                Value::U64(line.qty),
                Value::F64(rng.random_range(0..=10) as f64 / 100.0),
                Value::Str(a_string(rng, 20, 100)),
            ]))?;
        }
        let tax = subtotal * 0.0825;
        self.orders.insert(&Row::new(vec![
            Value::U64(o_id),
            Value::U64(c_id),
            Value::U64(self.clock),
            Value::F64(subtotal),
            Value::F64(tax),
            Value::F64(subtotal + tax + 3.0),
            Value::Str("AIR".into()),
            Value::U64(self.clock + 3),
            Value::Str("PENDING".into()),
        ]))?;
        self.cc_xacts.insert(&Row::new(vec![
            Value::U64(o_id),
            Value::Str("VISA".into()),
            Value::Str(n_string(rng, 16)),
            Value::Str(a_string(rng, 14, 30)),
            Value::Str(n_string(rng, 4)),
            Value::U64(rng.random_range(100_000..999_999)),
            Value::F64(subtotal + tax + 3.0),
            Value::U64(self.clock),
        ]))?;

        // Customer balance update.
        let mut customer = self.customer.get(c_id)?;
        if let Value::F64(balance) = customer.values()[10] {
            customer.values_mut()[10] = Value::F64(balance + subtotal + tax);
        }
        self.customer.update(c_id, &customer)?;
        Ok(())
    }

    fn register<R: Rng>(&mut self, rng: &mut R) -> Result<(), StoreError> {
        let c = self.next_customer;
        self.next_customer += 1;
        let row = customer_row(rng, c);
        self.customer.insert(c, &row)?;
        Ok(())
    }

    fn admin_update<R: Rng>(&mut self, rng: &mut R) -> Result<(), StoreError> {
        let i = self.pick_item(rng);
        let mut item = self.item.get(i)?;
        item.values_mut()[5] = Value::F64(rng.random_range(100..=10_000) as f64 / 100.0);
        let desc_len = rng.random_range(100..500);
        item.values_mut()[4] = Value::Str(prose(rng, desc_len));
        self.item.update(i, &item)?;
        Ok(())
    }
}

impl std::fmt::Debug for TpcwDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TpcwDriver")
            .field("scale", &self.scale)
            .field("interactions", &self.interactions)
            .field("orders", &self.orders_placed())
            .finish()
    }
}

fn item_row<R: Rng>(rng: &mut R, i: u64) -> Row {
    Row::new(vec![
        Value::U64(i),
        Value::Str(a_string(rng, 14, 60)), // title
        Value::Str(format!(
            "{} {}",
            a_string(rng, 3, 10),
            TpccRand::last_name(rng.random_range(0..1000))
        )), // author
        Value::Str(a_string(rng, 4, 12)),  // subject
        Value::Str({
            let n = rng.random_range(100..500);
            prose(rng, n)
        }), // description
        Value::F64(rng.random_range(100..=10_000) as f64 / 100.0), // cost
        Value::U64(rng.random_range(10..=30)), // stock
        Value::Str(n_string(rng, 13)),     // isbn
        Value::F64(rng.random_range(100..=12_000) as f64 / 100.0), // srp
        Value::Str(format!("img/{}.gif", n_string(rng, 6))),
    ])
}

fn customer_row<R: Rng>(rng: &mut R, c: u64) -> Row {
    Row::new(vec![
        Value::U64(c),
        Value::Str(format!("user{c}")),
        Value::Str(a_string(rng, 8, 16)), // passwd
        Value::Str(a_string(rng, 8, 15)), // fname
        Value::Str(TpccRand::last_name(rng.random_range(0..1000))),
        Value::Str(a_string(rng, 10, 30)), // street
        Value::Str(a_string(rng, 4, 15)),  // city
        Value::Str(n_string(rng, 16)),     // phone
        Value::Str(format!("user{c}@example.org")),
        Value::U64(0),   // since
        Value::F64(0.0), // balance
        Value::Str({
            let n = rng.random_range(100..400);
            prose(rng, n)
        }), // data
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use prins_block::{BlockDevice, BlockSize, InstrumentedDevice, MemDevice};
    use rand::SeedableRng;
    use std::sync::Arc;

    fn driver() -> (
        TpcwDriver,
        Arc<InstrumentedDevice<MemDevice>>,
        rand::rngs::StdRng,
    ) {
        let device = Arc::new(InstrumentedDevice::new(MemDevice::new(
            BlockSize::kb8(),
            8192,
        )));
        let pool = BufferPool::new(Arc::clone(&device) as Arc<dyn BlockDevice>, 128);
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let d = TpcwDriver::build(&pool, TpcwScale::tiny(), &mut rng).unwrap();
        device.reset_stats();
        (d, device, rng)
    }

    #[test]
    fn interactions_run_and_place_orders() {
        let (mut d, device, mut rng) = driver();
        d.run(&mut rng, 400).unwrap();
        assert_eq!(d.interactions(), 400);
        assert!(d.orders_placed() > 5, "orders: {}", d.orders_placed());
        assert!(device.stats().writes > 10);
    }

    #[test]
    fn buy_confirm_moves_stock_and_inserts_rows() {
        let (mut d, _device, mut rng) = driver();
        // Force carts to fill then buy.
        for b in 0..4 {
            d.shopping_cart(&mut rng, b).unwrap();
            d.buy_confirm(&mut rng, b).unwrap();
        }
        assert_eq!(d.orders_placed(), 4);
        assert_eq!(d.orders.len(), 4);
        assert!(d.order_line.len() >= 4);
        assert_eq!(d.cc_xacts.len(), 4);
    }

    #[test]
    fn registration_grows_customer_table() {
        let (mut d, _device, mut rng) = driver();
        let before = d.customer.table.len();
        for _ in 0..5 {
            d.register(&mut rng).unwrap();
        }
        assert_eq!(d.customer.table.len(), before + 5);
    }

    #[test]
    fn browsing_is_read_only_at_device_level() {
        let (mut d, device, mut rng) = driver();
        for _ in 0..50 {
            d.browse(&mut rng).unwrap();
        }
        d.pool.flush_all().unwrap();
        // Buffer-pool reads happen, but nothing is dirtied.
        assert_eq!(device.stats().writes, 0);
    }
}
