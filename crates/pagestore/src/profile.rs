//! Per-DBMS layout profiles.
//!
//! The paper runs three real databases. Their storage layouts differ in
//! ways that matter for block-delta size: Postgres stores a 23-byte
//! tuple header per row (MVCC `xmin`/`xmax`/`ctid`), Oracle packs rows
//! more tightly but updates block-level SCN metadata, MySQL/InnoDB sits
//! in between with 18-byte record headers and a higher default fill
//! factor (15/16). These knobs steer the page engine toward each
//! system's behaviour; the resulting change ratios land in the paper's
//! measured 5–20 % band either way.

/// Layout knobs approximating one DBMS's page behaviour.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DbProfile {
    name: &'static str,
    /// Extra per-row header bytes beyond our 8-byte txn counter.
    row_header_pad: usize,
    /// Fraction of a page filled before the engine starts a new page.
    fill_factor: f64,
}

impl DbProfile {
    /// Oracle-like: compact 3-byte-ish row overhead, 90 % fill (PCTFREE
    /// 10).
    pub fn oracle() -> Self {
        Self {
            name: "oracle",
            row_header_pad: 3,
            fill_factor: 0.90,
        }
    }

    /// Postgres-like: 23-byte tuple headers, fillfactor 100 for heap
    /// inserts.
    pub fn postgres() -> Self {
        Self {
            name: "postgres",
            row_header_pad: 15, // + our 8-byte txn counter = 23
            fill_factor: 0.98,
        }
    }

    /// MySQL/InnoDB-like: 18-byte record headers, 15/16 fill.
    pub fn mysql() -> Self {
        Self {
            name: "mysql",
            row_header_pad: 10, // + 8 = 18
            fill_factor: 0.9375,
        }
    }

    /// Profile name ("oracle", "postgres", "mysql").
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Extra per-row header bytes (beyond the 8-byte txn counter).
    pub fn row_header_pad(&self) -> usize {
        self.row_header_pad
    }

    /// Target page fill fraction.
    pub fn fill_factor(&self) -> f64 {
        self.fill_factor
    }

    /// Free-space threshold in bytes below which a page of `page_size`
    /// is considered full for new inserts.
    pub fn reserve_bytes(&self, page_size: usize) -> usize {
        ((1.0 - self.fill_factor) * page_size as f64) as usize
    }
}

impl Default for DbProfile {
    /// The Oracle profile (the paper's primary platform).
    fn default() -> Self {
        Self::oracle()
    }
}

impl std::fmt::Display for DbProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_distinct() {
        let o = DbProfile::oracle();
        let p = DbProfile::postgres();
        let m = DbProfile::mysql();
        assert!(p.row_header_pad() > m.row_header_pad());
        assert!(m.row_header_pad() > o.row_header_pad());
        assert_eq!(o.name(), "oracle");
    }

    #[test]
    fn reserve_bytes_scales_with_page_size() {
        let o = DbProfile::oracle();
        assert_eq!(o.reserve_bytes(8192), 819);
        assert!(DbProfile::postgres().reserve_bytes(8192) < 200);
    }
}
