//! Heap tables: rows in slotted pages with free-space tracking.

use std::collections::BTreeMap;
use std::fmt;

use prins_block::BlockError;

use crate::page::{PageId, SlotId, SlottedPage};
use crate::profile::DbProfile;
use crate::row::Row;
use crate::BufferPool;

/// Errors from the page store.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// The underlying block device failed.
    Block(BlockError),
    /// A tuple does not fit in the page's free space.
    PageFull {
        /// Page that was full.
        page: PageId,
        /// Bytes the operation needed.
        needed: usize,
        /// Bytes available.
        free: usize,
    },
    /// A tuple is empty or exceeds the per-tuple limit.
    TupleTooLarge {
        /// Offending length.
        len: usize,
    },
    /// The slot does not exist or is deleted.
    NoSuchSlot {
        /// Page searched.
        page: PageId,
        /// Slot requested.
        slot: SlotId,
    },
    /// A stored tuple failed to decode.
    CorruptTuple {
        /// What went wrong.
        detail: String,
    },
    /// The backing device has no free pages left.
    DeviceFull {
        /// Device capacity in pages.
        pages: u64,
    },
    /// Every buffer-pool frame is pinned.
    PoolExhausted {
        /// Pool capacity in frames.
        capacity: usize,
    },
    /// A key was not found in an index.
    KeyNotFound {
        /// The missing key.
        key: u64,
    },
    /// A duplicate key was inserted into a unique index.
    DuplicateKey {
        /// The duplicated key.
        key: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Block(e) => write!(f, "device error: {e}"),
            StoreError::PageFull { page, needed, free } => {
                write!(f, "page {page} full: need {needed} bytes, {free} free")
            }
            StoreError::TupleTooLarge { len } => write!(f, "tuple of {len} bytes not storable"),
            StoreError::NoSuchSlot { page, slot } => {
                write!(f, "no live tuple at page {page} slot {slot}")
            }
            StoreError::CorruptTuple { detail } => write!(f, "corrupt tuple: {detail}"),
            StoreError::DeviceFull { pages } => {
                write!(f, "device full: all {pages} pages allocated")
            }
            StoreError::PoolExhausted { capacity } => {
                write!(f, "all {capacity} buffer frames pinned")
            }
            StoreError::KeyNotFound { key } => write!(f, "key {key} not found"),
            StoreError::DuplicateKey { key } => write!(f, "duplicate key {key}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Block(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BlockError> for StoreError {
    fn from(e: BlockError) -> Self {
        StoreError::Block(e)
    }
}

/// Physical address of a row: `(page, slot)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId {
    /// Page holding the row.
    pub page: PageId,
    /// Slot within the page.
    pub slot: SlotId,
}

impl RecordId {
    /// Packs into a `u64` for storage in index leaves.
    pub fn to_u64(self) -> u64 {
        ((self.page as u64) << 16) | self.slot as u64
    }

    /// Unpacks from [`to_u64`](Self::to_u64) form.
    pub fn from_u64(v: u64) -> Self {
        Self {
            page: (v >> 16) as u32,
            slot: (v & 0xffff) as u16,
        }
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.page, self.slot)
    }
}

/// A heap table: an unordered collection of rows in slotted pages.
///
/// Pages are allocated from the shared [`BufferPool`]; an in-memory
/// free-space map routes inserts to pages with room (subject to the
/// profile's fill factor, mirroring Oracle's PCTFREE / InnoDB's 15/16
/// rule).
///
/// See the [crate docs](crate) for an example.
pub struct Table {
    pool: BufferPool,
    profile: DbProfile,
    pages: Vec<PageId>,
    /// page -> free bytes (maintained on every operation).
    fsm: BTreeMap<PageId, usize>,
    txn_counter: u64,
    rows: u64,
}

impl Table {
    /// Creates an empty table with the default (Oracle) profile.
    ///
    /// # Errors
    ///
    /// Fails if the device is already full.
    pub fn create(pool: &BufferPool) -> Result<Self, StoreError> {
        Self::with_profile(pool, DbProfile::default())
    }

    /// Creates an empty table with a specific DBMS profile.
    ///
    /// # Errors
    ///
    /// Fails if the device is already full.
    pub fn with_profile(pool: &BufferPool, profile: DbProfile) -> Result<Self, StoreError> {
        let mut table = Self {
            pool: pool.clone(),
            profile,
            pages: Vec::new(),
            fsm: BTreeMap::new(),
            txn_counter: 0,
            rows: 0,
        };
        table.grow()?;
        Ok(table)
    }

    /// The table's DBMS profile.
    pub fn profile(&self) -> DbProfile {
        self.profile
    }

    /// Number of live rows.
    pub fn len(&self) -> u64 {
        self.rows
    }

    /// Whether the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of pages the table occupies.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    fn grow(&mut self) -> Result<PageId, StoreError> {
        let pid = self.pool.allocate_page()?;
        let free = self.pool.with_page_mut(pid, |bytes| {
            let page = SlottedPage::init(bytes, pid);
            page.free_space()
        })?;
        self.pages.push(pid);
        self.fsm.insert(pid, free);
        Ok(pid)
    }

    fn next_txn(&mut self) -> u64 {
        self.txn_counter += 1;
        self.txn_counter
    }

    /// Inserts a row, returning its address.
    ///
    /// # Errors
    ///
    /// [`StoreError::DeviceFull`] when no page can hold the row;
    /// [`StoreError::TupleTooLarge`] if the encoded row exceeds a page.
    pub fn insert(&mut self, row: &Row) -> Result<RecordId, StoreError> {
        let mut row = row.clone();
        row.set_txn(self.next_txn());
        let tuple = row.encode(self.profile.row_header_pad());
        let reserve = self.profile.reserve_bytes(self.pool.page_size());

        // Find a page with room (checking the emptiest last-allocated
        // pages first keeps inserts clustered like real heap files).
        let candidate = self
            .pages
            .iter()
            .rev()
            .find(|pid| {
                self.fsm
                    .get(pid)
                    .is_some_and(|&free| free >= tuple.len() + 4 + reserve)
            })
            .copied();
        let pid = match candidate {
            Some(pid) => pid,
            None => self.grow()?,
        };
        let (slot, free) = self.pool.with_page_mut(pid, |bytes| {
            let mut page = SlottedPage::new(bytes);
            let slot = page.insert(&tuple)?;
            Ok::<_, StoreError>((slot, page.free_space()))
        })??;
        self.fsm.insert(pid, free);
        self.rows += 1;
        Ok(RecordId { page: pid, slot })
    }

    /// Fetches the row at `rid`.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSuchSlot`] / [`StoreError::CorruptTuple`].
    pub fn get(&self, rid: RecordId) -> Result<Row, StoreError> {
        let pad = self.profile.row_header_pad();
        self.pool.with_page(rid.page, |bytes| {
            let tuple = SlottedPage::read_from(bytes, rid.slot)?;
            Row::decode(tuple, pad)
        })?
    }

    /// Replaces the row at `rid`, bumping its txn header.
    ///
    /// Returns the row's (possibly new) address: if the grown row no
    /// longer fits its page, it migrates to another page, like a
    /// Postgres cold update.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSuchSlot`] for dead rows, plus insert errors on
    /// migration.
    pub fn update(&mut self, rid: RecordId, row: &Row) -> Result<RecordId, StoreError> {
        let mut row = row.clone();
        row.set_txn(self.next_txn());
        let tuple = row.encode(self.profile.row_header_pad());
        let result = self.pool.with_page_mut(rid.page, |bytes| {
            let mut page = SlottedPage::new(bytes);
            let r = page.update(rid.slot, &tuple);
            (r, page.free_space())
        })?;
        match result {
            (Ok(()), free) => {
                self.fsm.insert(rid.page, free);
                Ok(rid)
            }
            (Err(StoreError::PageFull { .. }), _) => {
                // Cold update: delete here, insert elsewhere (the row
                // count nets out: delete -1, insert +1).
                self.delete(rid)?;
                let new_rid = self.insert_encoded(&tuple)?;
                Ok(new_rid)
            }
            (Err(e), _) => Err(e),
        }
    }

    fn insert_encoded(&mut self, tuple: &[u8]) -> Result<RecordId, StoreError> {
        let reserve = self.profile.reserve_bytes(self.pool.page_size());
        let candidate = self
            .pages
            .iter()
            .rev()
            .find(|pid| {
                self.fsm
                    .get(pid)
                    .is_some_and(|&free| free >= tuple.len() + 4 + reserve)
            })
            .copied();
        let pid = match candidate {
            Some(pid) => pid,
            None => self.grow()?,
        };
        let (slot, free) = self.pool.with_page_mut(pid, |bytes| {
            let mut page = SlottedPage::new(bytes);
            let slot = page.insert(tuple)?;
            Ok::<_, StoreError>((slot, page.free_space()))
        })??;
        self.fsm.insert(pid, free);
        self.rows += 1;
        Ok(RecordId { page: pid, slot })
    }

    /// Deletes the row at `rid`.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSuchSlot`] for rows that do not exist.
    pub fn delete(&mut self, rid: RecordId) -> Result<(), StoreError> {
        self.pool.with_page_mut(rid.page, |bytes| {
            let mut page = SlottedPage::new(bytes);
            page.delete(rid.slot)
        })??;
        self.rows -= 1;
        Ok(())
    }

    /// Compacts every page (squeezing out holes left by deletes and
    /// relocating updates) and rebuilds the free-space map. Row
    /// addresses are stable. Returns the bytes reclaimed.
    ///
    /// The page-store analogue of `VACUUM`: after heavy churn the pages
    /// carry dead tuples that inflate block deltas; vacuuming restores
    /// locality.
    ///
    /// # Errors
    ///
    /// Propagates device failures.
    pub fn vacuum(&mut self) -> Result<usize, StoreError> {
        let mut reclaimed = 0usize;
        for &pid in &self.pages {
            let (before, after) = self.pool.with_page_mut(pid, |bytes| {
                let mut page = SlottedPage::new(bytes);
                let before = page.free_space();
                page.compact();
                (before, page.free_space())
            })?;
            reclaimed += after - before;
            self.fsm.insert(pid, after);
        }
        Ok(reclaimed)
    }

    /// Verifies that every live tuple in every page decodes with this
    /// table's profile, returning the number of rows checked.
    ///
    /// # Errors
    ///
    /// [`StoreError::CorruptTuple`] on the first undecodable tuple;
    /// device failures.
    pub fn verify(&self) -> Result<u64, StoreError> {
        let pad = self.profile.row_header_pad();
        let mut checked = 0u64;
        for &pid in &self.pages {
            checked += self.pool.with_page(pid, |bytes| {
                let mut n = 0u64;
                for (_slot, tuple) in SlottedPage::iter_from(bytes) {
                    Row::decode(tuple, pad)?;
                    n += 1;
                }
                Ok::<_, StoreError>(n)
            })??;
        }
        Ok(checked)
    }

    /// Collects every live row with its address (table-scan order).
    ///
    /// # Errors
    ///
    /// Propagates decode and device failures.
    pub fn scan(&self) -> Result<Vec<(RecordId, Row)>, StoreError> {
        let pad = self.profile.row_header_pad();
        let mut out = Vec::new();
        for &pid in &self.pages {
            let rows = self.pool.with_page(pid, |bytes| {
                SlottedPage::iter_from(bytes)
                    .map(|(slot, tuple)| Ok((slot, Row::decode(tuple, pad)?)))
                    .collect::<Result<Vec<_>, StoreError>>()
            })??;
            for (slot, row) in rows {
                out.push((RecordId { page: pid, slot }, row));
            }
        }
        Ok(out)
    }
}

impl fmt::Debug for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Table")
            .field("profile", &self.profile.name())
            .field("rows", &self.rows)
            .field("pages", &self.pages.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Value;
    use prins_block::{BlockSize, MemDevice};
    use std::sync::Arc;

    fn pool() -> BufferPool {
        BufferPool::new(Arc::new(MemDevice::new(BlockSize::kb8(), 512)), 64)
    }

    fn row(key: u64, text: &str) -> Row {
        Row::new(vec![
            Value::U64(key),
            Value::Str(text.to_string()),
            Value::F64(key as f64 * 1.5),
        ])
    }

    #[test]
    fn insert_get_roundtrip() {
        let pool = pool();
        let mut t = Table::create(&pool).unwrap();
        let rid = t.insert(&row(1, "hello")).unwrap();
        let got = t.get(rid).unwrap();
        assert_eq!(got.values()[0], Value::U64(1));
        assert_eq!(got.values()[1], Value::Str("hello".into()));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn many_inserts_span_pages() {
        let pool = pool();
        let mut t = Table::create(&pool).unwrap();
        let mut rids = Vec::new();
        for i in 0..2000u64 {
            rids.push(t.insert(&row(i, "data-data-data-data-data")).unwrap());
        }
        assert!(t.page_count() > 5, "2000 rows should span pages");
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(t.get(*rid).unwrap().values()[0], Value::U64(i as u64));
        }
    }

    #[test]
    fn update_in_place_and_migrating() {
        let pool = pool();
        let mut t = Table::create(&pool).unwrap();
        let rid = t.insert(&row(5, "short")).unwrap();
        // Same-size update stays put.
        let rid2 = t.update(rid, &row(5, "shirt")).unwrap();
        assert_eq!(rid, rid2);
        assert_eq!(t.get(rid2).unwrap().values()[1], Value::Str("shirt".into()));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn update_bumps_txn_header() {
        let pool = pool();
        let mut t = Table::create(&pool).unwrap();
        let rid = t.insert(&row(1, "x")).unwrap();
        let txn1 = t.get(rid).unwrap().txn();
        let rid = t.update(rid, &row(1, "y")).unwrap();
        let txn2 = t.get(rid).unwrap().txn();
        assert!(txn2 > txn1);
    }

    #[test]
    fn migration_on_grown_row() {
        // Tiny pages force migration quickly.
        let pool = BufferPool::new(
            Arc::new(MemDevice::new(BlockSize::new(512).unwrap(), 256)),
            16,
        );
        let mut t = Table::create(&pool).unwrap();
        let mut rids: Vec<RecordId> = (0..4).map(|i| t.insert(&row(i, "aaaa")).unwrap()).collect();
        // Grow row 0 beyond its page's remaining space.
        let big = "B".repeat(300);
        rids[0] = t.update(rids[0], &row(0, &big)).unwrap();
        assert_eq!(t.get(rids[0]).unwrap().values()[1], Value::Str(big.clone()));
        assert_eq!(t.len(), 4);
        // All other rows intact.
        for (i, rid) in rids.iter().enumerate().skip(1) {
            assert_eq!(t.get(*rid).unwrap().values()[0], Value::U64(i as u64));
        }
    }

    #[test]
    fn delete_removes_row() {
        let pool = pool();
        let mut t = Table::create(&pool).unwrap();
        let rid = t.insert(&row(1, "x")).unwrap();
        t.delete(rid).unwrap();
        assert!(t.get(rid).is_err());
        assert!(t.is_empty());
        assert!(t.delete(rid).is_err());
    }

    #[test]
    fn scan_returns_all_live_rows() {
        let pool = pool();
        let mut t = Table::create(&pool).unwrap();
        let mut rids = Vec::new();
        for i in 0..50u64 {
            rids.push(t.insert(&row(i, "scan-me")).unwrap());
        }
        t.delete(rids[10]).unwrap();
        t.delete(rids[20]).unwrap();
        let rows = t.scan().unwrap();
        assert_eq!(rows.len(), 48);
        let keys: std::collections::HashSet<u64> =
            rows.iter().map(|(_, r)| r.values()[0].as_key()).collect();
        assert!(!keys.contains(&10));
        assert!(keys.contains(&11));
    }

    #[test]
    fn profiles_change_tuple_size() {
        let pool = pool();
        let mut oracle = Table::with_profile(&pool, DbProfile::oracle()).unwrap();
        let mut postgres = Table::with_profile(&pool, DbProfile::postgres()).unwrap();
        // Same rows, postgres needs more pages per row count because of
        // wider headers — verify encoded sizes differ.
        let r = row(1, "hello");
        oracle.insert(&r).unwrap();
        postgres.insert(&r).unwrap();
        assert!(
            r.encode(DbProfile::postgres().row_header_pad()).len()
                > r.encode(DbProfile::oracle().row_header_pad()).len()
        );
    }

    #[test]
    fn vacuum_reclaims_dead_tuple_space() {
        let pool = pool();
        let mut t = Table::create(&pool).unwrap();
        let mut rids = Vec::new();
        for i in 0..200u64 {
            rids.push(t.insert(&row(i, "to-be-deleted-or-kept")).unwrap());
        }
        for rid in rids.iter().step_by(2) {
            t.delete(*rid).unwrap();
        }
        let reclaimed = t.vacuum().unwrap();
        assert!(reclaimed > 0, "expected space back from 100 deletes");
        // Survivors still readable at their old addresses.
        for (i, rid) in rids.iter().enumerate().skip(1).step_by(2) {
            assert_eq!(t.get(*rid).unwrap().values()[0], Value::U64(i as u64));
        }
        assert_eq!(t.verify().unwrap(), 100);
    }

    #[test]
    fn verify_counts_all_live_rows() {
        let pool = pool();
        let mut t = Table::create(&pool).unwrap();
        for i in 0..50u64 {
            t.insert(&row(i, "verify-me")).unwrap();
        }
        assert_eq!(t.verify().unwrap(), 50);
    }

    #[test]
    fn record_id_packs() {
        let rid = RecordId {
            page: 0xabcd,
            slot: 0x1234,
        };
        assert_eq!(RecordId::from_u64(rid.to_u64()), rid);
    }
}
