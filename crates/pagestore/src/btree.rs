//! An on-page B-tree index mapping `u64` keys to [`RecordId`]s.
//!
//! Node layout (within one page):
//!
//! ```text
//! byte 0      node type: 1 = leaf, 2 = internal
//! bytes 1-2   entry count (u16)
//! bytes 3-6   leaf: next-leaf page id + 1 (0 = none)
//!             internal: leftmost child page id
//! bytes 7..   entries:
//!             leaf:     (key u64, packed RecordId u64)  = 16 bytes
//!             internal: (key u64, child PageId u32)     = 12 bytes
//! ```
//!
//! Nodes are (de)serialized whole through the buffer pool — the tree
//! never holds two pages at once, so it composes with the pool's single
//! internal lock. Deletes do not rebalance (standard for workload
//! generators; lookups and scans remain correct).

use crate::bufpool::BufferPool;
use crate::page::PageId;
use crate::table::{RecordId, StoreError};

const HDR: usize = 7;
const LEAF_ENTRY: usize = 16;
const INTERNAL_ENTRY: usize = 12;

enum Node {
    Leaf {
        next: Option<PageId>,
        entries: Vec<(u64, u64)>,
    },
    Internal {
        leftmost: PageId,
        entries: Vec<(u64, PageId)>,
    },
}

/// A unique B-tree index over `u64` keys.
///
/// # Example
///
/// ```
/// use prins_block::{BlockSize, MemDevice};
/// use prins_pagestore::{BTree, BufferPool, RecordId};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), prins_pagestore::StoreError> {
/// let pool = BufferPool::new(Arc::new(MemDevice::new(BlockSize::kb8(), 128)), 16);
/// let mut index = BTree::create(&pool)?;
/// index.insert(42, RecordId { page: 3, slot: 7 })?;
/// assert_eq!(index.get(42)?, Some(RecordId { page: 3, slot: 7 }));
/// assert_eq!(index.get(43)?, None);
/// # Ok(())
/// # }
/// ```
pub struct BTree {
    pool: BufferPool,
    root: PageId,
    len: u64,
}

impl BTree {
    /// Creates an empty index, allocating its root page from `pool`.
    ///
    /// # Errors
    ///
    /// Fails when the device is full.
    pub fn create(pool: &BufferPool) -> Result<Self, StoreError> {
        let root = pool.allocate_page()?;
        let tree = Self {
            pool: pool.clone(),
            root,
            len: 0,
        };
        tree.write_node(
            root,
            &Node::Leaf {
                next: None,
                entries: Vec::new(),
            },
        )?;
        Ok(tree)
    }

    /// Number of keys in the index.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn leaf_capacity(&self) -> usize {
        (self.pool.page_size() - HDR) / LEAF_ENTRY
    }

    fn internal_capacity(&self) -> usize {
        (self.pool.page_size() - HDR) / INTERNAL_ENTRY
    }

    fn read_node(&self, pid: PageId) -> Result<Node, StoreError> {
        self.pool.with_page(pid, |bytes| {
            let kind = bytes[0];
            let count = u16::from_le_bytes([bytes[1], bytes[2]]) as usize;
            let extra = u32::from_le_bytes(bytes[3..7].try_into().unwrap());
            match kind {
                1 => {
                    let mut entries = Vec::with_capacity(count);
                    for i in 0..count {
                        let at = HDR + i * LEAF_ENTRY;
                        let key = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
                        let rid = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().unwrap());
                        entries.push((key, rid));
                    }
                    Ok(Node::Leaf {
                        next: (extra != 0).then(|| extra - 1),
                        entries,
                    })
                }
                2 => {
                    let mut entries = Vec::with_capacity(count);
                    for i in 0..count {
                        let at = HDR + i * INTERNAL_ENTRY;
                        let key = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
                        let child = u32::from_le_bytes(bytes[at + 8..at + 12].try_into().unwrap());
                        entries.push((key, child));
                    }
                    Ok(Node::Internal {
                        leftmost: extra,
                        entries,
                    })
                }
                other => Err(StoreError::CorruptTuple {
                    detail: format!("invalid btree node type {other} at page {pid}"),
                }),
            }
        })?
    }

    fn write_node(&self, pid: PageId, node: &Node) -> Result<(), StoreError> {
        self.pool.with_page_mut(pid, |bytes| {
            bytes.fill(0);
            match node {
                Node::Leaf { next, entries } => {
                    bytes[0] = 1;
                    bytes[1..3].copy_from_slice(&(entries.len() as u16).to_le_bytes());
                    bytes[3..7].copy_from_slice(&next.map_or(0, |n| n + 1).to_le_bytes());
                    for (i, (key, rid)) in entries.iter().enumerate() {
                        let at = HDR + i * LEAF_ENTRY;
                        bytes[at..at + 8].copy_from_slice(&key.to_le_bytes());
                        bytes[at + 8..at + 16].copy_from_slice(&rid.to_le_bytes());
                    }
                }
                Node::Internal { leftmost, entries } => {
                    bytes[0] = 2;
                    bytes[1..3].copy_from_slice(&(entries.len() as u16).to_le_bytes());
                    bytes[3..7].copy_from_slice(&leftmost.to_le_bytes());
                    for (i, (key, child)) in entries.iter().enumerate() {
                        let at = HDR + i * INTERNAL_ENTRY;
                        bytes[at..at + 8].copy_from_slice(&key.to_le_bytes());
                        bytes[at + 8..at + 12].copy_from_slice(&child.to_le_bytes());
                    }
                }
            }
        })
    }

    fn child_for(entries: &[(u64, PageId)], leftmost: PageId, key: u64) -> PageId {
        let mut child = leftmost;
        for &(k, c) in entries {
            if key >= k {
                child = c;
            } else {
                break;
            }
        }
        child
    }

    /// Inserts a key.
    ///
    /// # Errors
    ///
    /// [`StoreError::DuplicateKey`] if the key exists;
    /// [`StoreError::DeviceFull`] if a split cannot allocate.
    pub fn insert(&mut self, key: u64, rid: RecordId) -> Result<(), StoreError> {
        if let Some((sep, right)) = self.insert_rec(self.root, key, rid.to_u64())? {
            // Root split: move the current root into a fresh page and
            // grow a new root in place? Simpler: allocate a new root.
            let new_root = self.pool.allocate_page()?;
            self.write_node(
                new_root,
                &Node::Internal {
                    leftmost: self.root,
                    entries: vec![(sep, right)],
                },
            )?;
            self.root = new_root;
        }
        self.len += 1;
        Ok(())
    }

    fn insert_rec(
        &mut self,
        pid: PageId,
        key: u64,
        rid: u64,
    ) -> Result<Option<(u64, PageId)>, StoreError> {
        match self.read_node(pid)? {
            Node::Leaf { next, mut entries } => {
                match entries.binary_search_by_key(&key, |e| e.0) {
                    Ok(_) => return Err(StoreError::DuplicateKey { key }),
                    Err(at) => entries.insert(at, (key, rid)),
                }
                if entries.len() <= self.leaf_capacity() {
                    self.write_node(pid, &Node::Leaf { next, entries })?;
                    return Ok(None);
                }
                // Split.
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid);
                let sep = right_entries[0].0;
                let right_pid = self.pool.allocate_page()?;
                self.write_node(
                    right_pid,
                    &Node::Leaf {
                        next,
                        entries: right_entries,
                    },
                )?;
                self.write_node(
                    pid,
                    &Node::Leaf {
                        next: Some(right_pid),
                        entries,
                    },
                )?;
                Ok(Some((sep, right_pid)))
            }
            Node::Internal {
                leftmost,
                mut entries,
            } => {
                let child = Self::child_for(&entries, leftmost, key);
                let Some((sep, new_child)) = self.insert_rec(child, key, rid)? else {
                    return Ok(None);
                };
                let at = entries.partition_point(|&(k, _)| k <= sep);
                entries.insert(at, (sep, new_child));
                if entries.len() <= self.internal_capacity() {
                    self.write_node(pid, &Node::Internal { leftmost, entries })?;
                    return Ok(None);
                }
                // Split the internal node; the middle key moves up.
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid + 1);
                let (up_key, up_child) = entries.pop().expect("mid entry exists");
                let right_pid = self.pool.allocate_page()?;
                self.write_node(
                    right_pid,
                    &Node::Internal {
                        leftmost: up_child,
                        entries: right_entries,
                    },
                )?;
                self.write_node(pid, &Node::Internal { leftmost, entries })?;
                Ok(Some((up_key, right_pid)))
            }
        }
    }

    /// Looks up a key.
    ///
    /// # Errors
    ///
    /// Device and corruption errors only; a missing key is `Ok(None)`.
    pub fn get(&self, key: u64) -> Result<Option<RecordId>, StoreError> {
        let mut pid = self.root;
        loop {
            match self.read_node(pid)? {
                Node::Leaf { entries, .. } => {
                    return Ok(entries
                        .binary_search_by_key(&key, |e| e.0)
                        .ok()
                        .map(|at| RecordId::from_u64(entries[at].1)));
                }
                Node::Internal { leftmost, entries } => {
                    pid = Self::child_for(&entries, leftmost, key);
                }
            }
        }
    }

    /// Replaces the record id stored for `key`.
    ///
    /// # Errors
    ///
    /// [`StoreError::KeyNotFound`] if the key does not exist.
    pub fn update(&mut self, key: u64, rid: RecordId) -> Result<(), StoreError> {
        let mut pid = self.root;
        loop {
            match self.read_node(pid)? {
                Node::Leaf { next, mut entries } => {
                    let at = entries
                        .binary_search_by_key(&key, |e| e.0)
                        .map_err(|_| StoreError::KeyNotFound { key })?;
                    entries[at].1 = rid.to_u64();
                    return self.write_node(pid, &Node::Leaf { next, entries });
                }
                Node::Internal { leftmost, entries } => {
                    pid = Self::child_for(&entries, leftmost, key);
                }
            }
        }
    }

    /// Removes a key (leaves may underfill; lookups stay correct).
    ///
    /// # Errors
    ///
    /// [`StoreError::KeyNotFound`] if the key does not exist.
    pub fn delete(&mut self, key: u64) -> Result<(), StoreError> {
        let mut pid = self.root;
        loop {
            match self.read_node(pid)? {
                Node::Leaf { next, mut entries } => {
                    let at = entries
                        .binary_search_by_key(&key, |e| e.0)
                        .map_err(|_| StoreError::KeyNotFound { key })?;
                    entries.remove(at);
                    self.write_node(pid, &Node::Leaf { next, entries })?;
                    self.len -= 1;
                    return Ok(());
                }
                Node::Internal { leftmost, entries } => {
                    pid = Self::child_for(&entries, leftmost, key);
                }
            }
        }
    }

    /// Collects all `(key, rid)` pairs with `lo <= key <= hi`, in key
    /// order.
    ///
    /// # Errors
    ///
    /// Device and corruption errors.
    pub fn range(&self, lo: u64, hi: u64) -> Result<Vec<(u64, RecordId)>, StoreError> {
        let mut out = Vec::new();
        // Descend to the leaf that would hold `lo`.
        let mut pid = self.root;
        while let Node::Internal { leftmost, entries } = self.read_node(pid)? {
            pid = Self::child_for(&entries, leftmost, lo);
        }
        // Walk the leaf chain.
        loop {
            let Node::Leaf { next, entries } = self.read_node(pid)? else {
                return Err(StoreError::CorruptTuple {
                    detail: "leaf chain reached an internal node".into(),
                });
            };
            for (key, rid) in entries {
                if key > hi {
                    return Ok(out);
                }
                if key >= lo {
                    out.push((key, RecordId::from_u64(rid)));
                }
            }
            match next {
                Some(n) => pid = n,
                None => return Ok(out),
            }
        }
    }
}

impl std::fmt::Debug for BTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BTree")
            .field("len", &self.len)
            .field("root", &self.root)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prins_block::{BlockSize, MemDevice};
    use proptest::prelude::*;
    use std::sync::Arc;

    fn small_pool() -> BufferPool {
        // 512-byte pages force splits quickly: leaf capacity 31.
        BufferPool::new(
            Arc::new(MemDevice::new(BlockSize::new(512).unwrap(), 4096)),
            64,
        )
    }

    fn rid(v: u64) -> RecordId {
        RecordId::from_u64(v)
    }

    #[test]
    fn insert_get_small() {
        let pool = small_pool();
        let mut t = BTree::create(&pool).unwrap();
        for k in [5u64, 1, 9, 3, 7] {
            t.insert(k, rid(k * 100)).unwrap();
        }
        for k in [1u64, 3, 5, 7, 9] {
            assert_eq!(t.get(k).unwrap(), Some(rid(k * 100)));
        }
        assert_eq!(t.get(2).unwrap(), None);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn thousands_of_keys_split_many_levels() {
        let pool = small_pool();
        let mut t = BTree::create(&pool).unwrap();
        // Insert in a scrambled order.
        let mut keys: Vec<u64> = (0..5000).map(|i| (i * 2654435761u64) % 100_000).collect();
        keys.sort_unstable();
        keys.dedup();
        let mut shuffled = keys.clone();
        shuffled.reverse();
        for (i, &k) in shuffled.iter().enumerate() {
            t.insert(k, rid(i as u64)).unwrap();
        }
        assert_eq!(t.len(), keys.len() as u64);
        for (i, &k) in shuffled.iter().enumerate() {
            assert_eq!(t.get(k).unwrap(), Some(rid(i as u64)), "key {k}");
        }
    }

    #[test]
    fn duplicate_keys_rejected() {
        let pool = small_pool();
        let mut t = BTree::create(&pool).unwrap();
        t.insert(1, rid(1)).unwrap();
        assert!(matches!(
            t.insert(1, rid(2)),
            Err(StoreError::DuplicateKey { key: 1 })
        ));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn update_changes_value() {
        let pool = small_pool();
        let mut t = BTree::create(&pool).unwrap();
        t.insert(5, rid(1)).unwrap();
        t.update(5, rid(2)).unwrap();
        assert_eq!(t.get(5).unwrap(), Some(rid(2)));
        assert!(matches!(
            t.update(6, rid(0)),
            Err(StoreError::KeyNotFound { key: 6 })
        ));
    }

    #[test]
    fn delete_removes_key() {
        let pool = small_pool();
        let mut t = BTree::create(&pool).unwrap();
        for k in 0..200u64 {
            t.insert(k, rid(k)).unwrap();
        }
        for k in (0..200u64).step_by(2) {
            t.delete(k).unwrap();
        }
        for k in 0..200u64 {
            assert_eq!(t.get(k).unwrap().is_some(), k % 2 == 1, "key {k}");
        }
        assert_eq!(t.len(), 100);
        assert!(matches!(
            t.delete(0),
            Err(StoreError::KeyNotFound { key: 0 })
        ));
    }

    #[test]
    fn range_scan_is_sorted_and_bounded() {
        let pool = small_pool();
        let mut t = BTree::create(&pool).unwrap();
        for k in (0..1000u64).rev() {
            t.insert(k * 3, rid(k)).unwrap();
        }
        let hits = t.range(300, 600).unwrap();
        let keys: Vec<u64> = hits.iter().map(|(k, _)| *k).collect();
        let expected: Vec<u64> = (100..=200).map(|k| k * 3).collect();
        assert_eq!(keys, expected);
        // Full scan covers everything in order.
        let all = t.range(0, u64::MAX).unwrap();
        assert_eq!(all.len(), 1000);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn range_with_no_hits_is_empty() {
        let pool = small_pool();
        let mut t = BTree::create(&pool).unwrap();
        t.insert(10, rid(0)).unwrap();
        assert!(t.range(11, 20).unwrap().is_empty());
        assert!(t.range(0, 9).unwrap().is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_matches_btreemap_model(ops in proptest::collection::vec(
            (0u8..3, 0u64..500), 1..400)) {
            let pool = small_pool();
            let mut tree = BTree::create(&pool).unwrap();
            let mut model = std::collections::BTreeMap::new();
            for (op, key) in ops {
                match op {
                    0 => {
                        let r = tree.insert(key, rid(key + 1));
                        if let std::collections::btree_map::Entry::Vacant(e) = model.entry(key) {
                            prop_assert!(r.is_ok());
                            e.insert(key + 1);
                        } else {
                            prop_assert!(r.is_err());
                        }
                    }
                    1 => {
                        let r = tree.delete(key);
                        prop_assert_eq!(r.is_ok(), model.remove(&key).is_some());
                    }
                    _ => {
                        let got = tree.get(key).unwrap().map(|r| r.to_u64());
                        prop_assert_eq!(got, model.get(&key).copied());
                    }
                }
            }
            prop_assert_eq!(tree.len(), model.len() as u64);
            let all = tree.range(0, u64::MAX).unwrap();
            let expect: Vec<(u64, u64)> = model.into_iter().collect();
            let got: Vec<(u64, u64)> = all.into_iter().map(|(k, r)| (k, r.to_u64())).collect();
            prop_assert_eq!(got, expect);
        }
    }
}
