//! A miniature DBMS storage engine: slotted pages, a buffer pool, heap
//! tables and a B-tree index — the substrate under the TPC-C and TPC-W
//! workloads.
//!
//! # Why this exists
//!
//! The PRINS traffic results hinge on *data content*: a transaction
//! updates a few rows of an 8 KB database page, so only 5–20 % of the
//! block changes, and the parity `P' = new ⊕ old` is mostly zeros. I/O
//! traces cannot reproduce this (the paper makes the same point — traces
//! carry no contents), so this crate implements the storage layout real
//! DBMSs use:
//!
//! * [`SlottedPage`] — header + slot directory + tuple area, with an LSN
//!   that churns on every modification (the metadata noise real pages
//!   have),
//! * [`BufferPool`] — CLOCK eviction, dirty write-back, pin counting,
//! * [`Table`] — heap file of encoded rows ([`Row`], [`Value`]) with
//!   free-space tracking,
//! * [`BTree`] — an on-page B-tree mapping `u64` keys to [`RecordId`]s,
//! * [`DbProfile`] — per-DBMS layout knobs (row header size, fill
//!   factor) approximating Oracle, Postgres and MySQL page behaviour.
//!
//! Everything lives on an ordinary
//! [`BlockDevice`](prins_block::BlockDevice), so the workloads can run on
//! an instrumented device and expose the exact block write stream the
//! replication experiments consume.
//!
//! # Example
//!
//! ```
//! use prins_block::{BlockSize, MemDevice};
//! use prins_pagestore::{BufferPool, Row, Table, Value};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), prins_pagestore::StoreError> {
//! let device = Arc::new(MemDevice::new(BlockSize::kb8(), 256));
//! let pool = BufferPool::new(device, 32);
//! let mut table = Table::create(&pool)?;
//!
//! let rid = table.insert(&Row::new(vec![
//!     Value::U64(42),
//!     Value::Str("district-7".into()),
//!     Value::F64(1000.0),
//! ]))?;
//! let row = table.get(rid)?;
//! assert_eq!(row.values()[0], Value::U64(42));
//! pool.flush_all()?;
//! # Ok(())
//! # }
//! ```

mod btree;
mod bufpool;
mod page;
mod profile;
mod row;
mod table;

pub use btree::BTree;
pub use bufpool::BufferPool;
pub use page::{PageId, SlotId, SlottedPage};
pub use profile::DbProfile;
pub use row::{Row, Value};
pub use table::{RecordId, StoreError, Table};
