//! Typed rows and their binary encoding.

use crate::table::StoreError;

/// One field value of a row.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// 32-bit unsigned integer (ids, counts).
    U32(u32),
    /// 64-bit unsigned integer (keys, amounts in cents).
    U64(u64),
    /// 64-bit signed integer.
    I64(i64),
    /// Double-precision float (prices, balances).
    F64(f64),
    /// UTF-8 string (names, addresses, comment fields).
    Str(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
}

impl Value {
    fn tag(&self) -> u8 {
        match self {
            Value::U32(_) => 0,
            Value::U64(_) => 1,
            Value::I64(_) => 2,
            Value::F64(_) => 3,
            Value::Str(_) => 4,
            Value::Bytes(_) => 5,
        }
    }

    /// The key interpretation used by indexes: integer values cast to
    /// `u64`.
    ///
    /// # Panics
    ///
    /// Panics for non-integer values; schemas index integer columns
    /// only.
    pub fn as_key(&self) -> u64 {
        match self {
            Value::U32(v) => *v as u64,
            Value::U64(v) => *v,
            Value::I64(v) => *v as u64,
            other => panic!("value {other:?} cannot be an index key"),
        }
    }
}

/// A row: an ordered list of [`Value`]s plus a row header.
///
/// The header carries a transaction counter that the table bumps on
/// every update — emulating the MVCC/transaction metadata (`xmin`, SCN,
/// trx_id) real engines store per tuple, which contributes to the
/// changed bytes a block write exhibits.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    header_txn: u64,
    values: Vec<Value>,
}

impl Row {
    /// Creates a row with a zeroed header.
    pub fn new(values: Vec<Value>) -> Self {
        Self {
            header_txn: 0,
            values,
        }
    }

    /// The field values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Mutable access to the field values.
    pub fn values_mut(&mut self) -> &mut Vec<Value> {
        &mut self.values
    }

    /// The row-header transaction counter.
    pub fn txn(&self) -> u64 {
        self.header_txn
    }

    /// Sets the row-header transaction counter (done by the table on
    /// update).
    pub fn set_txn(&mut self, txn: u64) {
        self.header_txn = txn;
    }

    /// Encodes to the on-page tuple format, prefixed by `header_pad`
    /// additional header bytes (per-DBMS profile; filled with a rolling
    /// pattern derived from the txn counter, like real tuple headers).
    pub fn encode(&self, header_pad: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + header_pad);
        out.extend_from_slice(&self.header_txn.to_le_bytes());
        for i in 0..header_pad {
            out.push((self.header_txn as u8).wrapping_add(i as u8));
        }
        out.push(self.values.len() as u8);
        for v in &self.values {
            out.push(v.tag());
            match v {
                Value::U32(x) => out.extend_from_slice(&x.to_le_bytes()),
                Value::U64(x) => out.extend_from_slice(&x.to_le_bytes()),
                Value::I64(x) => out.extend_from_slice(&x.to_le_bytes()),
                Value::F64(x) => out.extend_from_slice(&x.to_le_bytes()),
                Value::Str(s) => {
                    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    out.extend_from_slice(s.as_bytes());
                }
                Value::Bytes(b) => {
                    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                    out.extend_from_slice(b);
                }
            }
        }
        out
    }

    /// Decodes a tuple produced by [`encode`](Self::encode) with the
    /// same `header_pad`.
    ///
    /// # Errors
    ///
    /// [`StoreError::CorruptTuple`] on truncation or invalid tags.
    pub fn decode(bytes: &[u8], header_pad: usize) -> Result<Self, StoreError> {
        let corrupt = || StoreError::CorruptTuple {
            detail: "truncated tuple".into(),
        };
        if bytes.len() < 8 + header_pad + 1 {
            return Err(corrupt());
        }
        let header_txn = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
        let mut pos = 8 + header_pad;
        let count = bytes[pos] as usize;
        pos += 1;
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            let tag = *bytes.get(pos).ok_or_else(corrupt)?;
            pos += 1;
            let value = match tag {
                0 => {
                    let v = u32::from_le_bytes(
                        bytes
                            .get(pos..pos + 4)
                            .ok_or_else(corrupt)?
                            .try_into()
                            .unwrap(),
                    );
                    pos += 4;
                    Value::U32(v)
                }
                1 => {
                    let v = u64::from_le_bytes(
                        bytes
                            .get(pos..pos + 8)
                            .ok_or_else(corrupt)?
                            .try_into()
                            .unwrap(),
                    );
                    pos += 8;
                    Value::U64(v)
                }
                2 => {
                    let v = i64::from_le_bytes(
                        bytes
                            .get(pos..pos + 8)
                            .ok_or_else(corrupt)?
                            .try_into()
                            .unwrap(),
                    );
                    pos += 8;
                    Value::I64(v)
                }
                3 => {
                    let v = f64::from_le_bytes(
                        bytes
                            .get(pos..pos + 8)
                            .ok_or_else(corrupt)?
                            .try_into()
                            .unwrap(),
                    );
                    pos += 8;
                    Value::F64(v)
                }
                4 => {
                    let len = u32::from_le_bytes(
                        bytes
                            .get(pos..pos + 4)
                            .ok_or_else(corrupt)?
                            .try_into()
                            .unwrap(),
                    ) as usize;
                    pos += 4;
                    let s = bytes.get(pos..pos + len).ok_or_else(corrupt)?;
                    pos += len;
                    Value::Str(String::from_utf8(s.to_vec()).map_err(|_| {
                        StoreError::CorruptTuple {
                            detail: "invalid utf-8 in string field".into(),
                        }
                    })?)
                }
                5 => {
                    let len = u32::from_le_bytes(
                        bytes
                            .get(pos..pos + 4)
                            .ok_or_else(corrupt)?
                            .try_into()
                            .unwrap(),
                    ) as usize;
                    pos += 4;
                    let b = bytes.get(pos..pos + len).ok_or_else(corrupt)?;
                    pos += len;
                    Value::Bytes(b.to_vec())
                }
                other => {
                    return Err(StoreError::CorruptTuple {
                        detail: format!("invalid value tag {other}"),
                    })
                }
            };
            values.push(value);
        }
        Ok(Self { header_txn, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Row {
        Row::new(vec![
            Value::U32(7),
            Value::U64(u64::MAX),
            Value::I64(-5),
            Value::F64(2.75),
            Value::Str("W_NAME_3".into()),
            Value::Bytes(vec![1, 2, 3]),
        ])
    }

    #[test]
    fn roundtrip_all_value_kinds() {
        for pad in [0usize, 4, 16] {
            let row = sample();
            let bytes = row.encode(pad);
            assert_eq!(Row::decode(&bytes, pad).unwrap(), row, "pad={pad}");
        }
    }

    #[test]
    fn txn_counter_is_preserved_and_affects_encoding() {
        let mut row = sample();
        let a = row.encode(8);
        row.set_txn(42);
        let b = row.encode(8);
        assert_ne!(a, b);
        assert_eq!(Row::decode(&b, 8).unwrap().txn(), 42);
    }

    #[test]
    fn truncation_is_rejected_at_every_cut() {
        let bytes = sample().encode(4);
        for cut in 0..bytes.len() {
            assert!(Row::decode(&bytes[..cut], 4).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn key_casting() {
        assert_eq!(Value::U32(5).as_key(), 5);
        assert_eq!(Value::U64(9).as_key(), 9);
        assert_eq!(Value::I64(3).as_key(), 3);
    }

    #[test]
    #[should_panic(expected = "index key")]
    fn string_as_key_panics() {
        let _ = Value::Str("x".into()).as_key();
    }

    proptest! {
        #[test]
        fn prop_roundtrip(ints in proptest::collection::vec(any::<u64>(), 0..8),
                          strs in proptest::collection::vec("[a-zA-Z0-9 ]{0,40}", 0..4),
                          pad in 0usize..32) {
            let mut values: Vec<Value> = ints.into_iter().map(Value::U64).collect();
            values.extend(strs.into_iter().map(Value::Str));
            let row = Row::new(values);
            let bytes = row.encode(pad);
            prop_assert_eq!(Row::decode(&bytes, pad).unwrap(), row);
        }
    }
}
