//! Buffer pool with CLOCK eviction and dirty write-back.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use prins_block::{BlockDevice, Lba};

use crate::page::PageId;
use crate::table::StoreError;

struct Frame {
    page_id: PageId,
    data: Vec<u8>,
    dirty: bool,
    referenced: bool,
    pinned: u32,
}

struct Inner {
    device: Arc<dyn BlockDevice>,
    capacity: usize,
    frames: Mutex<PoolState>,
    next_page: AtomicU32,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

struct PoolState {
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    clock_hand: usize,
}

/// A shared, fixed-capacity page cache over a [`BlockDevice`].
///
/// Pages are fetched on demand, cached, and written back when evicted by
/// the CLOCK algorithm or at [`flush_all`](Self::flush_all). This stands
/// in for the DBMS buffer pools of the paper's Oracle/Postgres/MySQL
/// installations: the *device* only sees a write when a dirty page is
/// evicted or flushed, which batches row changes into realistic block
/// deltas.
///
/// Handles are cheap to clone (shared state), so several tables and
/// indexes can allocate from one pool.
///
/// # Example
///
/// ```
/// use prins_block::{BlockSize, MemDevice};
/// use prins_pagestore::BufferPool;
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), prins_pagestore::StoreError> {
/// let pool = BufferPool::new(Arc::new(MemDevice::new(BlockSize::kb8(), 64)), 8);
/// let pid = pool.allocate_page()?;
/// pool.with_page_mut(pid, |bytes| bytes[100] = 42)?;
/// pool.flush_all()?;
/// assert_eq!(pool.with_page(pid, |bytes| bytes[100])?, 42);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<Inner>,
}

impl BufferPool {
    /// Creates a pool of `capacity` page frames over `device`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(device: Arc<dyn BlockDevice>, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        Self {
            inner: Arc::new(Inner {
                device,
                capacity,
                frames: Mutex::new(PoolState {
                    frames: Vec::new(),
                    map: HashMap::new(),
                    clock_hand: 0,
                }),
                next_page: AtomicU32::new(0),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
            }),
        }
    }

    /// Page size in bytes (= the device block size).
    pub fn page_size(&self) -> usize {
        self.inner.device.geometry().block_size().bytes()
    }

    /// Total pages the backing device can hold.
    pub fn device_pages(&self) -> u64 {
        self.inner.device.geometry().num_blocks()
    }

    /// `(hits, misses, evictions)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.inner.hits.load(Ordering::Relaxed),
            self.inner.misses.load(Ordering::Relaxed),
            self.inner.evictions.load(Ordering::Relaxed),
        )
    }

    /// Hands out the next unused page id.
    ///
    /// # Errors
    ///
    /// [`StoreError::DeviceFull`] when the device has no more pages.
    pub fn allocate_page(&self) -> Result<PageId, StoreError> {
        let pid = self.inner.next_page.fetch_add(1, Ordering::SeqCst);
        if (pid as u64) >= self.device_pages() {
            return Err(StoreError::DeviceFull {
                pages: self.device_pages(),
            });
        }
        Ok(pid)
    }

    fn load_frame(&self, state: &mut PoolState, page_id: PageId) -> Result<usize, StoreError> {
        if let Some(&idx) = state.map.get(&page_id) {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
            state.frames[idx].referenced = true;
            return Ok(idx);
        }
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
        let mut data = vec![0u8; self.page_size()];
        self.inner
            .device
            .read_block(Lba(page_id as u64), &mut data)?;

        if state.frames.len() < self.inner.capacity {
            let idx = state.frames.len();
            state.frames.push(Frame {
                page_id,
                data,
                dirty: false,
                referenced: true,
                pinned: 0,
            });
            state.map.insert(page_id, idx);
            return Ok(idx);
        }

        // CLOCK eviction.
        let n = state.frames.len();
        let mut spins = 0usize;
        let victim = loop {
            let idx = state.clock_hand;
            state.clock_hand = (state.clock_hand + 1) % n;
            let frame = &mut state.frames[idx];
            if frame.pinned > 0 {
                spins += 1;
            } else if frame.referenced {
                frame.referenced = false;
                spins += 1;
            } else {
                break idx;
            }
            if spins > 2 * n + 1 {
                return Err(StoreError::PoolExhausted {
                    capacity: self.inner.capacity,
                });
            }
        };
        let frame = &mut state.frames[victim];
        if frame.dirty {
            self.inner
                .device
                .write_block(Lba(frame.page_id as u64), &frame.data)?;
            self.inner.evictions.fetch_add(1, Ordering::Relaxed);
        }
        state.map.remove(&frame.page_id);
        frame.page_id = page_id;
        frame.data = data;
        frame.dirty = false;
        frame.referenced = true;
        state.map.insert(page_id, victim);
        Ok(victim)
    }

    /// Runs `f` over the page's bytes read-only.
    ///
    /// # Errors
    ///
    /// Device read failures and pool exhaustion.
    pub fn with_page<R>(
        &self,
        page_id: PageId,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R, StoreError> {
        let mut state = self.inner.frames.lock();
        let idx = self.load_frame(&mut state, page_id)?;
        Ok(f(&state.frames[idx].data))
    }

    /// Runs `f` over the page's bytes mutably; the page is marked dirty.
    ///
    /// # Errors
    ///
    /// Device read failures and pool exhaustion.
    pub fn with_page_mut<R>(
        &self,
        page_id: PageId,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R, StoreError> {
        let mut state = self.inner.frames.lock();
        let idx = self.load_frame(&mut state, page_id)?;
        let frame = &mut state.frames[idx];
        frame.dirty = true;
        Ok(f(&mut frame.data))
    }

    /// Writes every dirty page back to the device.
    ///
    /// # Errors
    ///
    /// Device write failures (remaining dirty pages stay dirty).
    pub fn flush_all(&self) -> Result<(), StoreError> {
        let mut state = self.inner.frames.lock();
        for frame in &mut state.frames {
            if frame.dirty {
                self.inner
                    .device
                    .write_block(Lba(frame.page_id as u64), &frame.data)?;
                frame.dirty = false;
            }
        }
        self.inner.device.flush()?;
        Ok(())
    }

    /// The backing device.
    pub fn device(&self) -> &Arc<dyn BlockDevice> {
        &self.inner.device
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (hits, misses, evictions) = self.stats();
        f.debug_struct("BufferPool")
            .field("capacity", &self.inner.capacity)
            .field("hits", &hits)
            .field("misses", &misses)
            .field("evictions", &evictions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prins_block::{BlockSize, InstrumentedDevice, MemDevice};

    fn pool(frames: usize, blocks: u64) -> BufferPool {
        BufferPool::new(Arc::new(MemDevice::new(BlockSize::kb4(), blocks)), frames)
    }

    #[test]
    fn writes_survive_eviction_pressure() {
        let p = pool(4, 64);
        for _ in 0..32 {
            p.allocate_page().unwrap();
        }
        for pid in 0..32u32 {
            p.with_page_mut(pid, |bytes| bytes[0] = pid as u8).unwrap();
        }
        for pid in 0..32u32 {
            assert_eq!(p.with_page(pid, |bytes| bytes[0]).unwrap(), pid as u8);
        }
        let (_, _, evictions) = p.stats();
        assert!(evictions > 0, "4-frame pool over 32 pages must evict");
    }

    #[test]
    fn flush_all_persists_to_device() {
        let device = Arc::new(MemDevice::new(BlockSize::kb4(), 8));
        let p = BufferPool::new(Arc::clone(&device) as Arc<dyn BlockDevice>, 8);
        let pid = p.allocate_page().unwrap();
        p.with_page_mut(pid, |bytes| bytes[7] = 9).unwrap();
        // Not yet on the device (no eviction, no flush).
        assert_eq!(device.read_block_vec(Lba(pid as u64)).unwrap()[7], 0);
        p.flush_all().unwrap();
        assert_eq!(device.read_block_vec(Lba(pid as u64)).unwrap()[7], 9);
    }

    #[test]
    fn pool_batches_device_writes() {
        let device = Arc::new(InstrumentedDevice::new(MemDevice::new(BlockSize::kb4(), 8)));
        let p = BufferPool::new(Arc::clone(&device) as Arc<dyn BlockDevice>, 8);
        let pid = p.allocate_page().unwrap();
        for i in 0..100 {
            p.with_page_mut(pid, |bytes| bytes[i] = i as u8).unwrap();
        }
        p.flush_all().unwrap();
        // 100 page mutations → 1 device write.
        assert_eq!(device.stats().writes, 1);
    }

    #[test]
    fn allocate_past_device_capacity_fails() {
        let p = pool(2, 2);
        p.allocate_page().unwrap();
        p.allocate_page().unwrap();
        assert!(matches!(
            p.allocate_page(),
            Err(StoreError::DeviceFull { .. })
        ));
    }

    #[test]
    fn clones_share_state() {
        let a = pool(2, 8);
        let b = a.clone();
        let pid = a.allocate_page().unwrap();
        a.with_page_mut(pid, |bytes| bytes[0] = 5).unwrap();
        assert_eq!(b.with_page(pid, |bytes| bytes[0]).unwrap(), 5);
        // Allocation counter is shared too.
        assert_ne!(b.allocate_page().unwrap(), pid);
    }

    #[test]
    fn hit_miss_accounting() {
        let p = pool(2, 8);
        let pid = p.allocate_page().unwrap();
        p.with_page(pid, |_| ()).unwrap(); // miss
        p.with_page(pid, |_| ()).unwrap(); // hit
        let (hits, misses, _) = p.stats();
        assert_eq!((hits, misses), (1, 1));
    }
}
