//! The slotted page: the on-disk layout real DBMSs use.
//!
//! ```text
//! ┌────────────────────────── page header (24 B) ──────────────────────────┐
//! │ magic(2) page_id(4) slot_count(2) free_start(2) free_end(2) lsn(8)     │
//! │ checksum(4)                                                            │
//! ├──────────── slot directory (4 B per slot, grows forward) ──────────────┤
//! │ (offset u16, len u16) (offset u16, len u16) …                          │
//! │                     ── free space ──                                   │
//! │                              … tuple data (grows backward from end)    │
//! └─────────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Every mutation bumps the LSN and refreshes the checksum — the header
//! churn that makes even a one-byte row update touch ~14 header bytes,
//! exactly the behaviour PRINS exploits (small, localized block deltas).

use crate::table::StoreError;

/// Index of a page within a table's file / device.
pub type PageId = u32;

/// Index of a slot within a page.
pub type SlotId = u16;

const MAGIC: u16 = 0x5047; // "PG"
const HEADER: usize = 24;
const SLOT_BYTES: usize = 4;

/// A mutable view over one page-sized buffer.
///
/// The page does not own its bytes; the [`BufferPool`](crate::BufferPool)
/// does. See the [module docs](self) for the layout.
pub struct SlottedPage<'a> {
    buf: &'a mut [u8],
}

impl<'a> SlottedPage<'a> {
    /// Wraps an existing initialized page.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is smaller than the header plus one slot —
    /// pages always come from a device with a validated block size.
    pub fn new(buf: &'a mut [u8]) -> Self {
        assert!(buf.len() >= HEADER + SLOT_BYTES, "page buffer too small");
        Self { buf }
    }

    /// Formats the buffer as an empty page.
    pub fn init(buf: &'a mut [u8], page_id: PageId) -> Self {
        let len = buf.len();
        assert!(len >= HEADER + SLOT_BYTES, "page buffer too small");
        assert!(len <= u16::MAX as usize + 1, "page larger than u16 space");
        buf.fill(0);
        let mut page = Self { buf };
        page.set_u16(0, MAGIC);
        page.set_u32(2, page_id);
        page.set_u16(6, 0); // slot_count
        page.set_u16(8, HEADER as u16); // free_start
        page.set_u16(10, (len - 1) as u16); // free_end (inclusive-ish, see accessors)
        page.touch();
        page
    }

    /// Whether the buffer carries a formatted page.
    pub fn is_initialized(buf: &[u8]) -> bool {
        buf.len() >= HEADER && u16::from_le_bytes([buf[0], buf[1]]) == MAGIC
    }

    fn get_u16(&self, at: usize) -> u16 {
        u16::from_le_bytes([self.buf[at], self.buf[at + 1]])
    }

    fn set_u16(&mut self, at: usize, v: u16) {
        self.buf[at..at + 2].copy_from_slice(&v.to_le_bytes());
    }

    fn get_u32(&self, at: usize) -> u32 {
        u32::from_le_bytes(self.buf[at..at + 4].try_into().unwrap())
    }

    fn set_u32(&mut self, at: usize, v: u32) {
        self.buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// The page's id, as recorded in its header.
    pub fn page_id(&self) -> PageId {
        self.get_u32(2)
    }

    /// Number of slots (including dead ones).
    pub fn slot_count(&self) -> u16 {
        self.get_u16(6)
    }

    /// The page LSN (bumped on every mutation).
    pub fn lsn(&self) -> u64 {
        u64::from_le_bytes(self.buf[12..20].try_into().unwrap())
    }

    fn free_start(&self) -> usize {
        self.get_u16(8) as usize
    }

    fn free_end(&self) -> usize {
        self.get_u16(10) as usize + 1
    }

    /// Contiguous free bytes between the slot directory and tuple data.
    pub fn free_space(&self) -> usize {
        self.free_end().saturating_sub(self.free_start())
    }

    /// Whether a tuple of `len` bytes (plus its slot) fits.
    pub fn fits(&self, len: usize) -> bool {
        self.free_space() >= len + SLOT_BYTES
    }

    /// Bumps the LSN and refreshes the header checksum — the metadata
    /// churn every real page write exhibits.
    fn touch(&mut self) {
        let lsn = self.lsn().wrapping_add(1);
        self.buf[12..20].copy_from_slice(&lsn.to_le_bytes());
        let mut h: u32 = 0x811c_9dc5;
        for &b in &self.buf[0..20] {
            h = (h ^ b as u32).wrapping_mul(0x0100_0193);
        }
        self.set_u32(20, h);
    }

    fn slot_at(&self, slot: SlotId) -> (usize, usize) {
        let base = HEADER + slot as usize * SLOT_BYTES;
        (self.get_u16(base) as usize, self.get_u16(base + 2) as usize)
    }

    fn set_slot(&mut self, slot: SlotId, offset: usize, len: usize) {
        let base = HEADER + slot as usize * SLOT_BYTES;
        self.set_u16(base, offset as u16);
        self.set_u16(base + 2, len as u16);
    }

    /// Inserts a tuple, returning its slot.
    ///
    /// # Errors
    ///
    /// [`StoreError::PageFull`] when the tuple plus a slot entry does not
    /// fit; [`StoreError::TupleTooLarge`] for zero-length or oversized
    /// tuples.
    pub fn insert(&mut self, tuple: &[u8]) -> Result<SlotId, StoreError> {
        if tuple.is_empty() || tuple.len() > u16::MAX as usize {
            return Err(StoreError::TupleTooLarge { len: tuple.len() });
        }
        if !self.fits(tuple.len()) {
            return Err(StoreError::PageFull {
                page: self.page_id(),
                needed: tuple.len() + SLOT_BYTES,
                free: self.free_space(),
            });
        }
        let slot = self.slot_count();
        let new_end = self.free_end() - tuple.len();
        self.buf[new_end..new_end + tuple.len()].copy_from_slice(tuple);
        self.set_slot(slot, new_end, tuple.len());
        self.set_u16(6, slot + 1);
        self.set_u16(8, (HEADER + (slot as usize + 1) * SLOT_BYTES) as u16);
        self.set_u16(10, (new_end - 1) as u16);
        self.touch();
        Ok(slot)
    }

    /// Reads the tuple in `slot`.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSuchSlot`] for out-of-range or deleted slots.
    pub fn read(&self, slot: SlotId) -> Result<&[u8], StoreError> {
        if slot >= self.slot_count() {
            return Err(StoreError::NoSuchSlot {
                page: self.page_id(),
                slot,
            });
        }
        let (offset, len) = self.slot_at(slot);
        if len == 0 {
            return Err(StoreError::NoSuchSlot {
                page: self.page_id(),
                slot,
            });
        }
        Ok(&self.buf[offset..offset + len])
    }

    /// Overwrites the tuple in `slot`.
    ///
    /// Shrinking or equal-size updates happen in place (leaving stale
    /// bytes behind, as real engines do); growing updates relocate the
    /// tuple within the page if space allows.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSuchSlot`] / [`StoreError::PageFull`] /
    /// [`StoreError::TupleTooLarge`].
    pub fn update(&mut self, slot: SlotId, tuple: &[u8]) -> Result<(), StoreError> {
        if tuple.is_empty() || tuple.len() > u16::MAX as usize {
            return Err(StoreError::TupleTooLarge { len: tuple.len() });
        }
        if slot >= self.slot_count() {
            return Err(StoreError::NoSuchSlot {
                page: self.page_id(),
                slot,
            });
        }
        let (offset, len) = self.slot_at(slot);
        if len == 0 {
            return Err(StoreError::NoSuchSlot {
                page: self.page_id(),
                slot,
            });
        }
        if tuple.len() <= len {
            self.buf[offset..offset + tuple.len()].copy_from_slice(tuple);
            self.set_slot(slot, offset, tuple.len());
        } else {
            if self.free_space() < tuple.len() {
                return Err(StoreError::PageFull {
                    page: self.page_id(),
                    needed: tuple.len(),
                    free: self.free_space(),
                });
            }
            let new_end = self.free_end() - tuple.len();
            self.buf[new_end..new_end + tuple.len()].copy_from_slice(tuple);
            self.set_slot(slot, new_end, tuple.len());
            self.set_u16(10, (new_end - 1) as u16);
        }
        self.touch();
        Ok(())
    }

    /// Deletes the tuple in `slot` (the slot becomes dead; space is
    /// reclaimed by [`compact`](Self::compact)).
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSuchSlot`].
    pub fn delete(&mut self, slot: SlotId) -> Result<(), StoreError> {
        if slot >= self.slot_count() || self.slot_at(slot).1 == 0 {
            return Err(StoreError::NoSuchSlot {
                page: self.page_id(),
                slot,
            });
        }
        let (offset, _) = self.slot_at(slot);
        self.set_slot(slot, offset, 0);
        self.touch();
        Ok(())
    }

    /// Rewrites the tuple area to squeeze out holes left by deletes and
    /// relocating updates. Slot ids are stable.
    pub fn compact(&mut self) {
        let count = self.slot_count();
        let mut live: Vec<(SlotId, Vec<u8>)> = Vec::new();
        for slot in 0..count {
            let (offset, len) = self.slot_at(slot);
            if len > 0 {
                live.push((slot, self.buf[offset..offset + len].to_vec()));
            }
        }
        let mut end = self.buf.len();
        for (slot, tuple) in &live {
            end -= tuple.len();
            self.buf[end..end + tuple.len()].copy_from_slice(tuple);
            let len = tuple.len();
            self.set_slot(*slot, end, len);
        }
        self.set_u16(10, (end - 1) as u16);
        self.touch();
    }

    /// Iterates over live `(slot, tuple)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &[u8])> {
        (0..self.slot_count()).filter_map(move |slot| {
            let (offset, len) = self.slot_at(slot);
            (len > 0).then(|| (slot, &self.buf[offset..offset + len]))
        })
    }

    /// Reads the tuple in `slot` from an immutable page buffer.
    ///
    /// Read-only counterpart of [`read`](Self::read) for use through a
    /// shared buffer-pool view (reads must not dirty the page).
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSuchSlot`] for out-of-range or deleted slots.
    pub fn read_from(buf: &[u8], slot: SlotId) -> Result<&[u8], StoreError> {
        let page_id = u32::from_le_bytes(buf[2..6].try_into().unwrap());
        let count = u16::from_le_bytes([buf[6], buf[7]]);
        if slot >= count {
            return Err(StoreError::NoSuchSlot {
                page: page_id,
                slot,
            });
        }
        let base = HEADER + slot as usize * SLOT_BYTES;
        let offset = u16::from_le_bytes([buf[base], buf[base + 1]]) as usize;
        let len = u16::from_le_bytes([buf[base + 2], buf[base + 3]]) as usize;
        if len == 0 {
            return Err(StoreError::NoSuchSlot {
                page: page_id,
                slot,
            });
        }
        Ok(&buf[offset..offset + len])
    }

    /// Iterates over live `(slot, tuple)` pairs of an immutable page
    /// buffer.
    pub fn iter_from(buf: &[u8]) -> impl Iterator<Item = (SlotId, &[u8])> {
        let count = u16::from_le_bytes([buf[6], buf[7]]);
        (0..count).filter_map(move |slot| {
            let base = HEADER + slot as usize * SLOT_BYTES;
            let offset = u16::from_le_bytes([buf[base], buf[base + 1]]) as usize;
            let len = u16::from_le_bytes([buf[base + 2], buf[base + 3]]) as usize;
            (len > 0).then(|| (slot, &buf[offset..offset + len]))
        })
    }
}

impl std::fmt::Debug for SlottedPage<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlottedPage")
            .field("page_id", &self.page_id())
            .field("slots", &self.slot_count())
            .field("free", &self.free_space())
            .field("lsn", &self.lsn())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn page_buf(size: usize) -> Vec<u8> {
        vec![0u8; size]
    }

    #[test]
    fn init_produces_empty_page() {
        let mut buf = page_buf(4096);
        let page = SlottedPage::init(&mut buf, 7);
        assert_eq!(page.page_id(), 7);
        assert_eq!(page.slot_count(), 0);
        assert_eq!(page.free_space(), 4096 - HEADER);
        assert!(SlottedPage::is_initialized(&buf));
        assert!(!SlottedPage::is_initialized(&page_buf(4096)));
    }

    #[test]
    fn insert_read_roundtrip() {
        let mut buf = page_buf(4096);
        let mut page = SlottedPage::init(&mut buf, 0);
        let a = page.insert(b"hello").unwrap();
        let b = page.insert(b"world!").unwrap();
        assert_eq!(page.read(a).unwrap(), b"hello");
        assert_eq!(page.read(b).unwrap(), b"world!");
        assert_eq!(page.slot_count(), 2);
    }

    #[test]
    fn lsn_churns_on_every_mutation() {
        let mut buf = page_buf(4096);
        let mut page = SlottedPage::init(&mut buf, 0);
        let lsn0 = page.lsn();
        let slot = page.insert(b"x").unwrap();
        let lsn1 = page.lsn();
        page.update(slot, b"y").unwrap();
        let lsn2 = page.lsn();
        assert!(lsn0 < lsn1 && lsn1 < lsn2);
    }

    #[test]
    fn update_in_place_and_growing() {
        let mut buf = page_buf(4096);
        let mut page = SlottedPage::init(&mut buf, 0);
        let slot = page.insert(&[7u8; 100]).unwrap();
        // shrink in place
        page.update(slot, &[8u8; 50]).unwrap();
        assert_eq!(page.read(slot).unwrap(), &[8u8; 50][..]);
        // grow: relocate
        page.update(slot, &[9u8; 200]).unwrap();
        assert_eq!(page.read(slot).unwrap(), &[9u8; 200][..]);
    }

    #[test]
    fn small_update_changes_small_fraction_of_page() {
        // The property the whole paper rests on.
        let mut buf = page_buf(8192);
        let mut page = SlottedPage::init(&mut buf, 0);
        let mut slots = Vec::new();
        for i in 0..50u16 {
            slots.push(page.insert(&[i as u8; 120]).unwrap());
        }
        let before = buf.to_vec();
        let mut page = SlottedPage::new(&mut buf);
        page.update(slots[25], &[0xff; 120]).unwrap();
        let changed = before
            .iter()
            .zip(buf.iter())
            .filter(|(a, b)| a != b)
            .count();
        let ratio = changed as f64 / 8192.0;
        assert!(
            ratio > 0.005 && ratio < 0.05,
            "one-row update changed {:.1}% of the page",
            ratio * 100.0
        );
    }

    #[test]
    fn page_full_is_reported() {
        let mut buf = page_buf(512);
        let mut page = SlottedPage::init(&mut buf, 3);
        let mut inserted = 0;
        loop {
            match page.insert(&[1u8; 64]) {
                Ok(_) => inserted += 1,
                Err(StoreError::PageFull { page: p, .. }) => {
                    assert_eq!(p, 3);
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(inserted >= 6);
    }

    #[test]
    fn delete_then_read_fails_then_compact_reclaims() {
        let mut buf = page_buf(512);
        let mut page = SlottedPage::init(&mut buf, 0);
        let a = page.insert(&[1u8; 100]).unwrap();
        let b = page.insert(&[2u8; 100]).unwrap();
        let free_before = page.free_space();
        page.delete(a).unwrap();
        assert!(page.read(a).is_err());
        assert_eq!(page.read(b).unwrap(), &[2u8; 100][..]);
        page.compact();
        assert!(page.free_space() >= free_before + 100);
        assert_eq!(page.read(b).unwrap(), &[2u8; 100][..]);
    }

    #[test]
    fn zero_and_oversized_tuples_rejected() {
        let mut buf = page_buf(512);
        let mut page = SlottedPage::init(&mut buf, 0);
        assert!(matches!(
            page.insert(b""),
            Err(StoreError::TupleTooLarge { .. })
        ));
    }

    #[test]
    fn iter_skips_dead_slots() {
        let mut buf = page_buf(1024);
        let mut page = SlottedPage::init(&mut buf, 0);
        page.insert(b"a").unwrap();
        let b = page.insert(b"b").unwrap();
        page.insert(b"c").unwrap();
        page.delete(b).unwrap();
        let live: Vec<_> = page.iter().map(|(s, t)| (s, t.to_vec())).collect();
        assert_eq!(live.len(), 2);
        assert_eq!(live[0].1, b"a");
        assert_eq!(live[1].1, b"c");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_page_operations_preserve_tuples(ops in proptest::collection::vec(
            (0u8..3, proptest::collection::vec(any::<u8>(), 1..64)), 1..60)) {
            let mut buf = page_buf(2048);
            let mut page = SlottedPage::init(&mut buf, 1);
            // Shadow model: map slot -> expected tuple.
            let mut model: std::collections::HashMap<SlotId, Vec<u8>> = Default::default();
            for (op, data) in ops {
                match op {
                    0 => {
                        if let Ok(slot) = page.insert(&data) {
                            model.insert(slot, data);
                        }
                    }
                    1 => {
                        if let Some(&slot) = model.keys().next() {
                            if page.update(slot, &data).is_ok() {
                                model.insert(slot, data);
                            }
                        }
                    }
                    _ => {
                        if let Some(&slot) = model.keys().next() {
                            page.delete(slot).unwrap();
                            model.remove(&slot);
                        }
                    }
                }
                // Every live tuple matches the model.
                for (slot, expected) in &model {
                    prop_assert_eq!(page.read(*slot).unwrap(), &expected[..]);
                }
            }
            // Compaction preserves everything.
            page.compact();
            for (slot, expected) in &model {
                prop_assert_eq!(page.read(*slot).unwrap(), &expected[..]);
            }
        }
    }
}
