//! Frozen snapshots and the three exporters (table, JSON, Prometheus).
//!
//! All output is integers in sorted key order — no floats, no hash
//! iteration — so snapshots of deterministic runs are byte-identical.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::events::Event;
use crate::metrics::{bucket_lower, bucket_upper, Histogram, BUCKETS};

/// A frozen view of one [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Non-empty buckets as `(lower_edge, upper_edge, count)`.
    pub buckets: Vec<(u64, u64, u64)>,
}

impl HistogramSnapshot {
    /// Freezes `hist`.
    pub fn of(hist: &Histogram) -> Self {
        let buckets = (0..BUCKETS)
            .filter_map(|i| {
                let n = hist.bucket(i);
                (n > 0).then(|| (bucket_lower(i), bucket_upper(i), n))
            })
            .collect();
        Self {
            count: hist.count(),
            sum: hist.sum(),
            max: hist.max(),
            p50: hist.p50(),
            p90: hist.p90(),
            p99: hist.p99(),
            buckets,
        }
    }

    /// Integer mean (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// Everything the registry knew at one instant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Exact per-kind event totals (ring overflow never loses these).
    pub event_counts: BTreeMap<String, u64>,
    /// The buffered event trace (oldest first; may be truncated).
    pub events: Vec<Event>,
    /// Events evicted from the ring before this snapshot.
    pub events_dropped: u64,
}

/// Escapes a Prometheus label *value*: backslash, double quote, and
/// newline must be backslash-escaped per the text exposition format.
fn prometheus_escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_map(out: &mut String, map: &BTreeMap<String, u64>) {
    out.push('{');
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", json_escape(k), v);
    }
    out.push('}');
}

impl Snapshot {
    /// A human-readable table of every instrument plus the event
    /// totals.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<42} {v:>14}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<42} {v:>14}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (ns)\n");
            let _ = writeln!(
                out,
                "  {:<42} {:>9} {:>11} {:>11} {:>11} {:>11}",
                "name", "count", "p50", "p90", "p99", "max"
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {:<42} {:>9} {:>11} {:>11} {:>11} {:>11}",
                    name, h.count, h.p50, h.p90, h.p99, h.max
                );
            }
        }
        if !self.event_counts.is_empty() {
            out.push_str("events\n");
            for (name, v) in &self.event_counts {
                let _ = writeln!(out, "  {name:<42} {v:>14}");
            }
            if self.events_dropped > 0 {
                let _ = writeln!(
                    out,
                    "  ({} buffered, {} evicted from ring)",
                    self.events.len(),
                    self.events_dropped
                );
            }
        }
        out
    }

    /// The full snapshot as one line of JSON (hand-rolled: only string
    /// keys and integers, sorted, so the bytes are deterministic).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":");
        json_map(&mut out, &self.counters);
        out.push_str(",\"gauges\":");
        json_map(&mut out, &self.gauges);
        out.push_str(",\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                json_escape(name),
                h.count,
                h.sum,
                h.max,
                h.p50,
                h.p90,
                h.p99
            );
            for (j, (lo, hi, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{lo},{hi},{n}]");
            }
            out.push_str("]}");
        }
        out.push_str("},\"event_counts\":");
        json_map(&mut out, &self.event_counts);
        let _ = write!(out, ",\"events_dropped\":{}", self.events_dropped);
        out.push('}');
        out
    }

    /// Just the per-kind event totals as JSON — the golden-file summary
    /// CI diffs across runs of a fixed seed.
    pub fn event_summary_json(&self) -> String {
        let mut out = String::new();
        json_map(&mut out, &self.event_counts);
        out
    }

    /// Prometheus text exposition: counters/gauges as-is, histograms as
    /// cumulative `_bucket{le=...}` series plus `_sum`/`_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (_, hi, n) in &h.buckets {
                cumulative += n;
                let _ = writeln!(out, "{name}_bucket{{le=\"{hi}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {}\n{name}_count {}", h.sum, h.count);
        }
        if !self.event_counts.is_empty() {
            let _ = writeln!(out, "# TYPE prins_events_total counter");
            for (name, v) in &self.event_counts {
                let _ = writeln!(
                    out,
                    "prins_events_total{{kind=\"{}\"}} {v}",
                    prometheus_escape_label(name)
                );
            }
        }
        // Some scrapers reject an exposition that does not end in a
        // newline; guarantee one even for an empty registry.
        if !out.ends_with('\n') {
            out.push('\n');
        }
        out
    }

    /// The buffered event trace, newline-joined.
    pub fn trace(&self) -> String {
        self.events
            .iter()
            .map(Event::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> std::sync::Arc<Registry> {
        let reg = Registry::new();
        reg.counter("writes").add(10);
        reg.gauge("queue_depth").set(3);
        let h = reg.histogram("encode_nanos");
        for v in [100u64, 200, 400, 800] {
            h.record(v);
        }
        reg.events().record(
            Event::new(5, crate::EventKind::Send { writes: 2 })
                .seq(1)
                .replica(0),
        );
        reg
    }

    #[test]
    fn json_is_stable_and_integer_only() {
        let snap = sample_registry().snapshot();
        let json = snap.to_json();
        assert_eq!(json, sample_registry().snapshot().to_json());
        assert!(json.contains("\"writes\":10"));
        assert!(json.contains("\"event_counts\":{\"send\":1}"));
        assert!(!json.contains('.'), "no floats anywhere: {json}");
    }

    #[test]
    fn table_lists_every_section() {
        let table = sample_registry().snapshot().to_table();
        for needle in ["counters", "gauges", "histograms", "events", "writes"] {
            assert!(table.contains(needle), "missing {needle} in:\n{table}");
        }
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let text = sample_registry().snapshot().to_prometheus();
        assert!(text.contains("encode_nanos_count 4"));
        assert!(text.contains("encode_nanos_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("prins_events_total{kind=\"send\"} 1"));
    }

    #[test]
    fn prometheus_escapes_label_values_and_ends_with_newline() {
        let mut snap = sample_registry().snapshot();
        snap.event_counts
            .insert("odd\"kind\\with\nnewline".to_string(), 3);
        let text = snap.to_prometheus();
        assert!(
            text.contains("prins_events_total{kind=\"odd\\\"kind\\\\with\\nnewline\"} 3"),
            "label not escaped in:\n{text}"
        );
        assert_eq!(
            text.matches("# TYPE prins_events_total counter").count(),
            1,
            "one TYPE line for the shared metric family:\n{text}"
        );
        assert!(text.ends_with('\n'));
        // Even a registry with no instruments produces a newline-terminated
        // (non-empty) exposition.
        let empty = Registry::new().snapshot().to_prometheus();
        assert!(empty.ends_with('\n'));
    }

    #[test]
    fn event_summary_is_just_the_counts() {
        let snap = sample_registry().snapshot();
        assert_eq!(snap.event_summary_json(), "{\"send\":1}");
    }

    /// A registry carrying the buffer-pool gauges the engine publishes
    /// (`publish_engine_gauges` in prins-core).
    fn pool_registry() -> std::sync::Arc<Registry> {
        let reg = Registry::new();
        reg.gauge("pool_hits").set(970);
        reg.gauge("pool_misses").set(30);
        reg.gauge("pool_miss_ppm").set(30_000);
        reg.gauge("pool_in_use").set(4);
        reg.gauge("pool_in_use_hwm").set(12);
        reg.gauge("engine_bytes_copied_per_write").set(8192);
        reg
    }

    #[test]
    fn table_renders_pool_gauges() {
        let table = pool_registry().snapshot().to_table();
        for needle in ["pool_in_use", "pool_in_use_hwm", "pool_miss_ppm"] {
            assert!(table.contains(needle), "missing {needle} in:\n{table}");
        }
        assert!(table.contains("engine_bytes_copied_per_write"));
    }

    #[test]
    fn json_renders_pool_gauges() {
        let json = pool_registry().snapshot().to_json();
        assert!(json.contains("\"pool_in_use\":4"));
        assert!(json.contains("\"pool_in_use_hwm\":12"));
        assert!(json.contains("\"pool_miss_ppm\":30000"));
        assert!(json.contains("\"engine_bytes_copied_per_write\":8192"));
    }

    #[test]
    fn prometheus_renders_pool_gauges() {
        let text = pool_registry().snapshot().to_prometheus();
        assert!(text.contains("# TYPE pool_in_use gauge\npool_in_use 4"));
        assert!(text.contains("pool_in_use_hwm 12"));
        assert!(text.contains("pool_miss_ppm 30000"));
    }

    #[test]
    fn event_summary_ignores_pool_gauges() {
        // The golden-file summary is event counts only; new gauges must
        // never perturb existing golden files.
        let snap = pool_registry().snapshot();
        assert_eq!(snap.event_summary_json(), "{}");
        assert_eq!(snap.trace(), "");
    }
}
