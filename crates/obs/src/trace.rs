//! Per-write causal tracing: trace IDs, stage events, and the
//! lock-light [`TraceSink`] every pipeline hop reports into.
//!
//! A trace is born when a write enters the system ([`TraceSink::begin`])
//! and finalizes when its last expected completion arrives — one per
//! replica lane, strip target, or read answer. Each hop appends a
//! fixed-size [`TraceEvent`] (stage, lane, virtual-ns timestamp, bytes)
//! into a bounded per-trace buffer held in a fixed slot table, so the
//! steady-state record path performs **zero heap allocations**: no
//! `Vec` growth, no `Arc` clones, no map inserts.
//!
//! On finalize the sink:
//!
//! * records end-to-end latency into a log2 histogram;
//! * decomposes the trace into per-stage time (the gap each event
//!   closed) and, for traces at or above the current p99, charges those
//!   nanoseconds to `(stage, lane)` **tail attribution** counters plus
//!   a per-stage "dominant stage" counter;
//! * burns the per-shard `slo_writes_over_budget` counter when the
//!   trace exceeded [`TraceConfig::latency_budget_nanos`];
//! * retains the trace in the [`FlightRecorder`] if it is part of the
//!   deterministic 1-in-N sample or is an **anomaly** (over budget,
//!   retransmitted, or hit a wrong-epoch drop).
//!
//! Determinism: IDs derive from sequence numbers (no randomness),
//! timestamps come from the injected clock, and every exported summary
//! is integers in sorted key order — byte-identical across replays of
//! the same simulated schedule.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::metrics::Histogram;
use crate::recorder::{CompletedTrace, FlightRecorder};

/// Maximum events retained per trace; later hops set the truncation
/// flag instead of growing the buffer.
pub const MAX_TRACE_EVENTS: usize = 24;

/// Lane tag for events not bound to a replica lane.
pub const NO_LANE: u32 = u32::MAX;

/// Lane histogram buckets for tail attribution: lanes `0..8` map to
/// their own bucket, everything else (higher lanes, [`NO_LANE`]) to the
/// last.
pub const LANE_BUCKETS: usize = 9;

/// A causal trace identifier, minted deterministically from a sequence
/// number (engine pipeline) or a `(shard, counter)` pair (cluster
/// layers) — never from randomness, so replays of the same simulated
/// schedule mint the same IDs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceId(u64);

impl TraceId {
    /// An ID for engine-pipeline write `seq`.
    #[must_use]
    pub fn from_seq(seq: u64) -> Self {
        Self(seq)
    }

    /// An ID for the `counter`-th traced operation of shard `shard`.
    #[must_use]
    pub fn for_shard(shard: u32, counter: u64) -> Self {
        Self((u64::from(shard) << 48) | (counter & 0xffff_ffff_ffff))
    }

    /// The raw key (slot index and sampling both derive from it).
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The well-mixed display form, rendered as 16 hex digits.
    #[must_use]
    pub fn display(self) -> u64 {
        // splitmix64 finalizer: a bijective mix, so display IDs are
        // unique exactly when raw keys are.
        let mut z = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.display())
    }
}

/// A pipeline hop a trace event can mark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceStage {
    /// Write captured at the primary (trace birth).
    Capture = 0,
    /// Write entered the engine admission queue.
    Admit = 1,
    /// Write folded into a queued job for the same LBA.
    Coalesce = 2,
    /// Parity/payload encoding finished.
    Encode = 3,
    /// Released from the reorder buffer to the sender lanes.
    Reorder = 4,
    /// Picked up by a sender lane's queue.
    LaneQueue = 5,
    /// Frame handed to the transport.
    Send = 6,
    /// Send failed before the frame left the primary.
    SendError = 7,
    /// Frame retransmitted after a corrupt-NAK.
    Retransmit = 8,
    /// Positive acknowledgement collected.
    Ack = 9,
    /// Acknowledgement collection failed.
    AckError = 10,
    /// Cluster foreground frame sent to a replica.
    ReplicaSend = 11,
    /// Cluster replica acknowledgement collected.
    ReplicaAck = 12,
    /// A stale-epoch response was dropped while this trace waited.
    WrongEpoch = 13,
    /// Read served by an in-sync replica.
    ReadOffload = 14,
    /// Read candidate rejected by the freshness guard.
    ReadReject = 15,
    /// One migration batch copied through the target group.
    MigrateCopy = 16,
    /// Erasure-coded data-strip delta sent.
    StripData = 17,
    /// Erasure-coded parity-strip delta sent.
    StripParity = 18,
    /// Erasure-coded strip acknowledgement collected.
    StripAck = 19,
}

/// Number of [`TraceStage`] variants.
pub const STAGE_COUNT: usize = 20;

impl TraceStage {
    /// Every stage, in tag order.
    pub const ALL: [TraceStage; STAGE_COUNT] = [
        TraceStage::Capture,
        TraceStage::Admit,
        TraceStage::Coalesce,
        TraceStage::Encode,
        TraceStage::Reorder,
        TraceStage::LaneQueue,
        TraceStage::Send,
        TraceStage::SendError,
        TraceStage::Retransmit,
        TraceStage::Ack,
        TraceStage::AckError,
        TraceStage::ReplicaSend,
        TraceStage::ReplicaAck,
        TraceStage::WrongEpoch,
        TraceStage::ReadOffload,
        TraceStage::ReadReject,
        TraceStage::MigrateCopy,
        TraceStage::StripData,
        TraceStage::StripParity,
        TraceStage::StripAck,
    ];

    /// Dense index of the stage (its discriminant).
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable stage name — the key of trace summaries and goldens.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceStage::Capture => "capture",
            TraceStage::Admit => "admit",
            TraceStage::Coalesce => "coalesce",
            TraceStage::Encode => "encode",
            TraceStage::Reorder => "reorder",
            TraceStage::LaneQueue => "lane-queue",
            TraceStage::Send => "send",
            TraceStage::SendError => "send-error",
            TraceStage::Retransmit => "retransmit",
            TraceStage::Ack => "ack",
            TraceStage::AckError => "ack-error",
            TraceStage::ReplicaSend => "replica-send",
            TraceStage::ReplicaAck => "replica-ack",
            TraceStage::WrongEpoch => "wrong-epoch",
            TraceStage::ReadOffload => "read-offload",
            TraceStage::ReadReject => "read-reject",
            TraceStage::MigrateCopy => "migrate-copy",
            TraceStage::StripData => "strip-data",
            TraceStage::StripParity => "strip-parity",
            TraceStage::StripAck => "strip-ack",
        }
    }
}

/// One fixed-size hop record inside a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Clock reading (virtual nanoseconds) when the hop happened.
    pub at: u64,
    /// Which hop.
    pub stage: TraceStage,
    /// Replica/lane index, or [`NO_LANE`].
    pub lane: u32,
    /// Bytes the hop moved (0 where not applicable).
    pub bytes: u32,
}

impl TraceEvent {
    const EMPTY: TraceEvent = TraceEvent {
        at: 0,
        stage: TraceStage::Capture,
        lane: NO_LANE,
        bytes: 0,
    };
}

/// Tail-attribution lane bucket of a lane tag.
#[must_use]
pub fn lane_bucket(lane: u32) -> usize {
    (lane as usize).min(LANE_BUCKETS - 1)
}

/// Tracing configuration.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Active-trace slots (rounded up to a power of two). A key whose
    /// slot is occupied by an older live trace evicts it.
    pub slots: usize,
    /// Deterministic sampling: traces whose raw key is divisible by
    /// this are retained in the flight recorder even when healthy.
    pub sample_every: u64,
    /// End-to-end latency SLO; a trace over this burns the per-shard
    /// `slo_writes_over_budget` counter and is retained as an anomaly.
    pub latency_budget_nanos: u64,
    /// Completed traces the flight recorder keeps (oldest evicted).
    pub retain: usize,
    /// Shards the SLO counters are split across (shard tags at or past
    /// this index fold into the last counter).
    pub shards: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            slots: 1024,
            sample_every: 64,
            latency_budget_nanos: 25_000_000,
            retain: 256,
            shards: 1,
        }
    }
}

/// One active-trace slot.
struct Slot {
    active: bool,
    key: u64,
    shard: u32,
    /// Completions still expected before the trace finalizes.
    pending: u32,
    /// Application writes riding the trace (1 + coalesced folds).
    writes: u32,
    retransmits: u32,
    wrong_epoch: u32,
    started_at: u64,
    len: u8,
    truncated: bool,
    events: [TraceEvent; MAX_TRACE_EVENTS],
}

impl Slot {
    const fn empty() -> Self {
        Self {
            active: false,
            key: 0,
            shard: 0,
            pending: 0,
            writes: 0,
            retransmits: 0,
            wrong_epoch: 0,
            started_at: 0,
            len: 0,
            truncated: false,
            events: [TraceEvent::EMPTY; MAX_TRACE_EVENTS],
        }
    }

    fn push(&mut self, event: TraceEvent) {
        if (self.len as usize) < MAX_TRACE_EVENTS {
            self.events[self.len as usize] = event;
            self.len += 1;
        } else {
            self.truncated = true;
        }
    }
}

/// The per-write trace collector: a fixed table of active-trace slots
/// feeding latency, tail-attribution, and SLO accounting plus the
/// [`FlightRecorder`].
///
/// All record-path methods take `&self`, lock only the one slot they
/// touch, and never allocate — safe to call from the encode pool and
/// every sender lane concurrently.
pub struct TraceSink {
    cfg: TraceConfig,
    mask: u64,
    slots: Box<[Mutex<Slot>]>,
    recorder: FlightRecorder,
    latency: Histogram,
    started: AtomicU64,
    completed: AtomicU64,
    evicted: AtomicU64,
    truncated: AtomicU64,
    sampled: AtomicU64,
    anomalies: AtomicU64,
    /// Above-p99 traces whose dominant stage this is.
    tail_traces: [AtomicU64; STAGE_COUNT],
    /// Above-p99 nanoseconds charged to `(stage, lane bucket)`.
    tail_nanos: [[AtomicU64; LANE_BUCKETS]; STAGE_COUNT],
    /// Per-shard writes that finished over the latency budget.
    slo_over_budget: Box<[AtomicU64]>,
}

impl TraceSink {
    /// A sink with `cfg` (slot count rounded up to a power of two).
    #[must_use]
    pub fn new(cfg: TraceConfig) -> Self {
        let slots = cfg.slots.next_power_of_two().max(2);
        Self {
            mask: slots as u64 - 1,
            slots: (0..slots).map(|_| Mutex::new(Slot::empty())).collect(),
            recorder: FlightRecorder::new(cfg.retain),
            latency: Histogram::new(),
            started: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            truncated: AtomicU64::new(0),
            sampled: AtomicU64::new(0),
            anomalies: AtomicU64::new(0),
            tail_traces: std::array::from_fn(|_| AtomicU64::new(0)),
            tail_nanos: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            slo_over_budget: (0..cfg.shards.max(1)).map(|_| AtomicU64::new(0)).collect(),
            cfg,
        }
    }

    /// The configuration the sink was built with.
    #[must_use]
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// The flight recorder holding retained traces.
    #[must_use]
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// End-to-end latency distribution of completed traces.
    #[must_use]
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    fn slot(&self, id: TraceId) -> &Mutex<Slot> {
        &self.slots[(id.raw() & self.mask) as usize]
    }

    /// Opens a trace: `pending` completions are expected before it
    /// finalizes (use 1 plus [`add_pending`](Self::add_pending) when
    /// the fan-out is only known later). Records a `capture` event
    /// carrying the write's bytes. An older live trace in the same slot
    /// is evicted (counted, dropped).
    pub fn begin(&self, id: TraceId, shard: u32, pending: u32, at: u64, bytes: usize) {
        self.started.fetch_add(1, Ordering::Relaxed);
        let mut slot = self.slot(id).lock().unwrap();
        if slot.active {
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        *slot = Slot {
            active: true,
            key: id.raw(),
            shard,
            pending: pending.max(1),
            writes: 1,
            retransmits: 0,
            wrong_epoch: 0,
            started_at: at,
            len: 0,
            truncated: false,
            events: [TraceEvent::EMPTY; MAX_TRACE_EVENTS],
        };
        slot.push(TraceEvent {
            at,
            stage: TraceStage::Capture,
            lane: NO_LANE,
            bytes: bytes.min(u32::MAX as usize) as u32,
        });
    }

    /// Appends a hop to a live trace (ignored if the trace was evicted
    /// or already finalized).
    pub fn event(&self, id: TraceId, stage: TraceStage, lane: u32, at: u64, bytes: usize) {
        let mut slot = self.slot(id).lock().unwrap();
        if slot.active && slot.key == id.raw() {
            slot.push(TraceEvent {
                at,
                stage,
                lane,
                bytes: bytes.min(u32::MAX as usize) as u32,
            });
        }
    }

    /// Raises the number of completions the trace waits for by `n`.
    pub fn add_pending(&self, id: TraceId, n: u32) {
        let mut slot = self.slot(id).lock().unwrap();
        if slot.active && slot.key == id.raw() {
            slot.pending = slot.pending.saturating_add(n);
        }
    }

    /// Books one more application write folded into the trace and
    /// appends a `coalesce` event.
    pub fn fold(&self, id: TraceId, at: u64, bytes: usize) {
        let mut slot = self.slot(id).lock().unwrap();
        if slot.active && slot.key == id.raw() {
            slot.writes = slot.writes.saturating_add(1);
            slot.push(TraceEvent {
                at,
                stage: TraceStage::Coalesce,
                lane: NO_LANE,
                bytes: bytes.min(u32::MAX as usize) as u32,
            });
        }
    }

    /// Books one retransmission (and its hop event).
    pub fn mark_retransmit(&self, id: TraceId, lane: u32, at: u64) {
        let mut slot = self.slot(id).lock().unwrap();
        if slot.active && slot.key == id.raw() {
            slot.retransmits = slot.retransmits.saturating_add(1);
            slot.push(TraceEvent {
                at,
                stage: TraceStage::Retransmit,
                lane,
                bytes: 0,
            });
        }
    }

    /// Books one stale-epoch response dropped while this trace waited.
    pub fn mark_wrong_epoch(&self, id: TraceId, lane: u32, at: u64) {
        let mut slot = self.slot(id).lock().unwrap();
        if slot.active && slot.key == id.raw() {
            slot.wrong_epoch = slot.wrong_epoch.saturating_add(1);
            slot.push(TraceEvent {
                at,
                stage: TraceStage::WrongEpoch,
                lane,
                bytes: 0,
            });
        }
    }

    /// Appends a terminal hop and retires one pending completion; the
    /// trace finalizes when the last one lands.
    pub fn complete(&self, id: TraceId, stage: TraceStage, lane: u32, at: u64, bytes: usize) {
        let mut slot = self.slot(id).lock().unwrap();
        if !slot.active || slot.key != id.raw() {
            return;
        }
        slot.push(TraceEvent {
            at,
            stage,
            lane,
            bytes: bytes.min(u32::MAX as usize) as u32,
        });
        slot.pending = slot.pending.saturating_sub(1);
        if slot.pending == 0 {
            self.finalize(&mut slot, at);
        }
    }

    /// Retires one pending completion without a hop event — the
    /// "primary hold" a layer releases once its fan-out is booked.
    pub fn release(&self, id: TraceId, at: u64) {
        let mut slot = self.slot(id).lock().unwrap();
        if !slot.active || slot.key != id.raw() {
            return;
        }
        slot.pending = slot.pending.saturating_sub(1);
        if slot.pending == 0 {
            self.finalize(&mut slot, at);
        }
    }

    fn finalize(&self, slot: &mut Slot, finished_at: u64) {
        slot.active = false;
        self.completed.fetch_add(1, Ordering::Relaxed);
        if slot.truncated {
            self.truncated.fetch_add(1, Ordering::Relaxed);
        }
        let latency = finished_at.saturating_sub(slot.started_at);
        self.latency.record(latency);

        // Tail attribution: time decomposes into the gap each event
        // closed, charged to that event's (stage, lane). The p99 is the
        // histogram's running estimate at completion time — under a
        // deterministic schedule the comparison replays identically.
        if latency >= self.latency.quantile_permille(990) && latency > 0 {
            let mut prev = slot.started_at;
            let mut per_stage = [0u64; STAGE_COUNT];
            for event in &slot.events[..slot.len as usize] {
                let gap = event.at.saturating_sub(prev);
                prev = prev.max(event.at);
                if gap == 0 {
                    continue;
                }
                per_stage[event.stage.index()] += gap;
                self.tail_nanos[event.stage.index()][lane_bucket(event.lane)]
                    .fetch_add(gap, Ordering::Relaxed);
            }
            let dominant = per_stage
                .iter()
                .enumerate()
                .max_by_key(|&(i, &n)| (n, std::cmp::Reverse(i)))
                .map(|(i, _)| i)
                .unwrap_or(0);
            if per_stage[dominant] > 0 {
                self.tail_traces[dominant].fetch_add(1, Ordering::Relaxed);
            }
        }

        let over_budget = latency > self.cfg.latency_budget_nanos;
        if over_budget {
            let shard = (slot.shard as usize).min(self.slo_over_budget.len() - 1);
            self.slo_over_budget[shard].fetch_add(u64::from(slot.writes), Ordering::Relaxed);
        }
        let anomaly = over_budget || slot.retransmits > 0 || slot.wrong_epoch > 0;
        let sampled = slot.key.is_multiple_of(self.cfg.sample_every.max(1));
        if anomaly {
            self.anomalies.fetch_add(1, Ordering::Relaxed);
        }
        if sampled {
            self.sampled.fetch_add(1, Ordering::Relaxed);
        }
        if anomaly || sampled {
            self.recorder.push(CompletedTrace {
                id: TraceId(slot.key),
                shard: slot.shard,
                writes: slot.writes,
                retransmits: slot.retransmits,
                wrong_epoch: slot.wrong_epoch,
                started_at: slot.started_at,
                finished_at,
                anomaly,
                sampled,
                truncated: slot.truncated,
                len: slot.len,
                events: slot.events,
            });
        }
    }

    /// Traces opened.
    #[must_use]
    pub fn started(&self) -> u64 {
        self.started.load(Ordering::Relaxed)
    }

    /// Traces finalized.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Live traces evicted by a slot collision before completing.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Completed traces that overflowed [`MAX_TRACE_EVENTS`].
    #[must_use]
    pub fn truncated(&self) -> u64 {
        self.truncated.load(Ordering::Relaxed)
    }

    /// Completed traces retained by the deterministic 1-in-N sample.
    #[must_use]
    pub fn sampled(&self) -> u64 {
        self.sampled.load(Ordering::Relaxed)
    }

    /// Completed traces flagged anomalous (over budget, retransmitted,
    /// or wrong-epoch).
    #[must_use]
    pub fn anomalies(&self) -> u64 {
        self.anomalies.load(Ordering::Relaxed)
    }

    /// Above-p99 traces whose dominant stage is `stage`.
    #[must_use]
    pub fn tail_traces(&self, stage: TraceStage) -> u64 {
        self.tail_traces[stage.index()].load(Ordering::Relaxed)
    }

    /// Above-p99 nanoseconds charged to `stage` in lane bucket
    /// `bucket` (see [`lane_bucket`]).
    #[must_use]
    pub fn tail_lane_nanos(&self, stage: TraceStage, bucket: usize) -> u64 {
        self.tail_nanos[stage.index()][bucket.min(LANE_BUCKETS - 1)].load(Ordering::Relaxed)
    }

    /// Above-p99 nanoseconds charged to lane bucket `bucket` across
    /// every stage.
    #[must_use]
    pub fn tail_bucket_nanos(&self, bucket: usize) -> u64 {
        TraceStage::ALL
            .iter()
            .map(|&s| self.tail_lane_nanos(s, bucket))
            .sum()
    }

    /// Writes that finished over the latency budget, per shard.
    #[must_use]
    pub fn slo_over_budget(&self) -> Vec<u64> {
        self.slo_over_budget
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// One-line deterministic JSON of the sink's aggregate state — the
    /// trace-summary golden CI diffs across replays. Integers only,
    /// keys sorted, per-stage tail entries included only when nonzero.
    #[must_use]
    pub fn summary_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"anomalies\":{},\"completed\":{},\"evicted\":{}",
            self.anomalies(),
            self.completed(),
            self.evicted()
        );
        let _ = write!(
            out,
            ",\"latency\":{{\"count\":{},\"max\":{},\"p50\":{},\"p99\":{}}}",
            self.latency.count(),
            self.latency.max(),
            self.latency.p50(),
            self.latency.p99()
        );
        let _ = write!(
            out,
            ",\"retained\":{},\"sampled\":{}",
            self.recorder.len(),
            self.sampled()
        );
        out.push_str(",\"slo_writes_over_budget\":[");
        for (i, v) in self.slo_over_budget().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        out.push_str("],\"started\":");
        let _ = write!(out, "{}", self.started());
        out.push_str(",\"tail\":{");
        let mut first = true;
        for &stage in &TraceStage::ALL {
            let traces = self.tail_traces(stage);
            let nanos: u64 = (0..LANE_BUCKETS)
                .map(|b| self.tail_lane_nanos(stage, b))
                .sum();
            if traces == 0 && nanos == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{{\"lanes\":[", stage.name());
            for b in 0..LANE_BUCKETS {
                if b > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", self.tail_lane_nanos(stage, b));
            }
            let _ = write!(out, "],\"nanos\":{nanos},\"traces\":{traces}}}");
        }
        out.push_str("},\"truncated\":");
        let _ = write!(out, "{}", self.truncated());
        out.push('}');
        out
    }

    /// The aggregate state as a human table: latency quantiles, tail
    /// attribution per stage, SLO burn per shard.
    #[must_use]
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "traces: {} started, {} completed, {} anomalies, {} sampled, \
             {} retained ({} evicted, {} truncated)",
            self.started(),
            self.completed(),
            self.anomalies(),
            self.sampled(),
            self.recorder.len(),
            self.evicted(),
            self.truncated()
        );
        let _ = writeln!(
            out,
            "latency (ns): count {} p50 {} p99 {} max {}",
            self.latency.count(),
            self.latency.p50(),
            self.latency.p99(),
            self.latency.max()
        );
        let total_tail: u64 = (0..LANE_BUCKETS).map(|b| self.tail_bucket_nanos(b)).sum();
        if total_tail > 0 {
            out.push_str("tail attribution (above-p99 traces)\n");
            let _ = writeln!(
                out,
                "  {:<14} {:>8} {:>14} {:>6}",
                "stage", "traces", "nanos", "share"
            );
            for &stage in &TraceStage::ALL {
                let nanos: u64 = (0..LANE_BUCKETS)
                    .map(|b| self.tail_lane_nanos(stage, b))
                    .sum();
                let traces = self.tail_traces(stage);
                if nanos == 0 && traces == 0 {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "  {:<14} {:>8} {:>14} {:>5}%",
                    stage.name(),
                    traces,
                    nanos,
                    nanos * 100 / total_tail.max(1)
                );
            }
        }
        for (shard, burned) in self.slo_over_budget().iter().enumerate() {
            if *burned > 0 {
                let _ = writeln!(out, "slo_writes_over_budget{{shard={shard}}} {burned}");
            }
        }
        out
    }
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("slots", &self.slots.len())
            .field("started", &self.started())
            .field("completed", &self.completed())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink() -> TraceSink {
        TraceSink::new(TraceConfig {
            slots: 8,
            sample_every: 2,
            latency_budget_nanos: 1_000,
            retain: 16,
            shards: 2,
        })
    }

    #[test]
    fn trace_ids_are_deterministic_and_distinct() {
        assert_eq!(TraceId::from_seq(7), TraceId::from_seq(7));
        assert_ne!(
            TraceId::from_seq(7).display(),
            TraceId::from_seq(8).display()
        );
        let sharded = TraceId::for_shard(3, 5);
        assert_eq!(sharded.raw() >> 48, 3);
        assert_eq!(format!("{}", TraceId::from_seq(1)).len(), 16);
    }

    #[test]
    fn trace_completes_after_all_pending_and_lands_in_recorder() {
        let s = sink();
        let id = TraceId::from_seq(0); // key 0: sampled under every N
        s.begin(id, 0, 2, 100, 4096);
        s.event(id, TraceStage::Send, 0, 150, 64);
        s.complete(id, TraceStage::Ack, 0, 300, 0);
        assert_eq!(s.completed(), 0, "one completion still pending");
        s.complete(id, TraceStage::Ack, 1, 400, 0);
        assert_eq!(s.completed(), 1);
        assert_eq!(s.latency().count(), 1);
        assert_eq!(s.latency().max(), 300);
        let traces = s.recorder().snapshot();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].writes, 1);
        assert!(traces[0].sampled);
        assert_eq!(traces[0].len, 4, "capture + send + 2 acks");
    }

    #[test]
    fn anomalies_are_retained_even_when_not_sampled() {
        let s = sink();
        let id = TraceId::from_seq(3); // 3 % 2 != 0: not sampled
        s.begin(id, 1, 1, 0, 128);
        s.mark_retransmit(id, 0, 10);
        s.complete(id, TraceStage::Ack, 0, 20, 0);
        let traces = s.recorder().snapshot();
        assert_eq!(traces.len(), 1);
        assert!(traces[0].anomaly);
        assert!(!traces[0].sampled);
        assert_eq!(traces[0].retransmits, 1);
        assert_eq!(s.anomalies(), 1);
    }

    #[test]
    fn slo_burn_counts_folded_writes_per_shard() {
        let s = sink();
        let id = TraceId::from_seq(1);
        s.begin(id, 1, 1, 0, 64);
        s.fold(id, 5, 64);
        s.fold(id, 6, 64);
        s.complete(id, TraceStage::Ack, 0, 5_000, 0); // over the 1µs budget
        assert_eq!(s.slo_over_budget(), vec![0, 3]);
    }

    #[test]
    fn slot_collision_evicts_the_older_trace() {
        let s = sink(); // 8 slots
        let a = TraceId::from_seq(1);
        let b = TraceId::from_seq(9); // same slot as 1
        s.begin(a, 0, 1, 0, 0);
        s.begin(b, 0, 1, 10, 0);
        assert_eq!(s.evicted(), 1);
        // The evicted trace's completions are ignored.
        s.complete(a, TraceStage::Ack, 0, 20, 0);
        assert_eq!(s.completed(), 0);
        s.complete(b, TraceStage::Ack, 0, 30, 0);
        assert_eq!(s.completed(), 1);
    }

    #[test]
    fn tail_attribution_charges_the_slow_lane() {
        let s = TraceSink::new(TraceConfig {
            slots: 64,
            sample_every: 1,
            latency_budget_nanos: u64::MAX,
            retain: 64,
            shards: 1,
        });
        // Every trace: fast ack on lane 0 at +100, slow ack on lane 2
        // closing a 10_000ns gap. Slow-lane time dominates every trace,
        // so whatever the p99 cut keeps must attribute to lane 2.
        for seq in 0..50u64 {
            let id = TraceId::from_seq(seq);
            s.begin(id, 0, 2, seq * 100_000, 4096);
            s.complete(id, TraceStage::Ack, 0, seq * 100_000 + 100, 0);
            s.complete(id, TraceStage::Ack, 2, seq * 100_000 + 10_100, 0);
        }
        let slow = s.tail_bucket_nanos(lane_bucket(2));
        let total: u64 = (0..LANE_BUCKETS).map(|b| s.tail_bucket_nanos(b)).sum();
        assert!(total > 0, "some traces must clear the p99 cut");
        assert!(
            slow * 10 >= total * 8,
            "slow lane got {slow} of {total} tail nanos"
        );
        assert!(s.tail_traces(TraceStage::Ack) > 0);
    }

    #[test]
    fn events_overflow_sets_truncated_not_panics() {
        let s = sink();
        let id = TraceId::from_seq(0);
        s.begin(id, 0, 1, 0, 0);
        for i in 0..(MAX_TRACE_EVENTS as u64 + 8) {
            s.event(id, TraceStage::Send, 0, i, 0);
        }
        s.complete(id, TraceStage::Ack, 0, 999, 0);
        assert_eq!(s.truncated(), 1);
        let traces = s.recorder().snapshot();
        assert!(traces[0].truncated);
        assert_eq!(traces[0].len as usize, MAX_TRACE_EVENTS);
    }

    #[test]
    fn summary_json_is_deterministic_and_integer_only() {
        let s = sink();
        let id = TraceId::from_seq(0);
        s.begin(id, 0, 1, 0, 64);
        s.complete(id, TraceStage::Ack, 0, 5_000, 0);
        let a = s.summary_json();
        let b = s.summary_json();
        assert_eq!(a, b);
        assert!(a.contains("\"completed\":1"), "{a}");
        assert!(a.contains("\"slo_writes_over_budget\":[1,0]"), "{a}");
        assert!(!a.contains('.'), "no floats: {a}");
        assert!(s.to_table().contains("slo_writes_over_budget{shard=0} 1"));
    }
}
