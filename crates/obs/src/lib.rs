//! `prins-obs` — the observability substrate of the PRINS stack.
//!
//! The paper's headline claims are all *measurements*: bytes on the wire
//! per application write, < 10 % CPU overhead, response-time scaling.
//! This crate provides the instrumentation every layer shares:
//!
//! * a lock-light [`Registry`] of named [`Counter`]s, [`Gauge`]s and
//!   fixed-bucket log2 [`Histogram`]s (p50/p90/p99/max, mergeable,
//!   plain `std` atomics — no external dependencies);
//! * a stage-[`Span`] API timing scopes through the injectable
//!   [`Clock`](prins_net::Clock), so spans are deterministic under a
//!   [`SimClock`](prins_net::SimClock) and real under the wall clock;
//! * a bounded [`EventRing`] of typed pipeline events (admit, encode
//!   done, coalesce, send, ack, NAK, resync batch, lifecycle
//!   transition) tagged with seq/LBA/replica, drainable as a replayable
//!   trace;
//! * exporters — a human-readable table, a JSON snapshot, and
//!   Prometheus-style text — all with deterministic (sorted, integer)
//!   output, so two runs of the same simulation seed produce
//!   byte-identical snapshots.
//!
//! # Determinism contract
//!
//! Everything in a [`Snapshot`] is integers in sorted order; no floats,
//! no wall-clock reads, no hash-map iteration. When the instrumented
//! code runs single-threaded against a virtual clock (the `prins-sim`
//! harness, the stepped engine), the event trace and the snapshot are
//! pure functions of the input schedule. Under real threads the counts
//! still add up, but event interleaving follows the scheduler.
//!
//! # Example
//!
//! ```
//! use prins_obs::{Registry, Span};
//! use prins_net::{Clock, WallClock};
//!
//! let registry = Registry::new();
//! let clock = WallClock::new();
//! let hist = registry.histogram("encode_nanos");
//! {
//!     let _span = Span::start(&clock, &hist);
//!     // ... the work being timed ...
//! }
//! let snap = registry.snapshot();
//! assert_eq!(snap.histograms["encode_nanos"].count, 1);
//! ```

#![warn(missing_docs)]

mod events;
mod export;
mod meter;
mod metrics;
mod recorder;
mod registry;
mod span;
mod trace;

pub use events::{Event, EventKind, EventRing};
pub use export::{HistogramSnapshot, Snapshot};
pub use meter::register_meter;
pub use metrics::{Counter, Gauge, Histogram, BUCKETS};
pub use recorder::{CompletedTrace, FlightRecorder};
pub use registry::Registry;
pub use span::Span;
pub use trace::{
    lane_bucket, TraceConfig, TraceEvent, TraceId, TraceSink, TraceStage, LANE_BUCKETS,
    MAX_TRACE_EVENTS, NO_LANE, STAGE_COUNT,
};
