//! The bounded, typed pipeline-event ring.
//!
//! Every layer pushes [`Event`]s into one shared [`EventRing`]: the
//! engine pipeline (admit, coalesce, encode done, send, ack), the
//! cluster (resync batches, lifecycle transitions), and anything else
//! wired to the registry. The ring is bounded — old events fall off,
//! but per-kind totals are kept exactly — and drainable, so a harness
//! can assert on the trace or replay it.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Mutex;

/// What happened. Payload-carrying variants keep the tags small and
/// `Copy`; everything renders deterministically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A write entered the admission queue.
    Admit,
    /// A write folded into a still-queued job for the same LBA.
    Coalesce,
    /// A parity finished encoding.
    EncodeDone,
    /// A frame was handed to a replica transport (`writes` = original
    /// writes carried, batching and folds included).
    Send {
        /// Application writes the frame carries.
        writes: u32,
    },
    /// A positive acknowledgement was collected.
    AckOk,
    /// A NAK was collected.
    Nak,
    /// Ack collection failed (timeout, disconnect, garbage frame).
    AckError,
    /// A send failed before the frame left the primary.
    SendError,
    /// A flush barrier completed.
    Barrier,
    /// One resync batch was sent and acknowledged.
    ResyncBatch {
        /// Frames sent in this batch.
        sent: u32,
        /// Frames still queued after it.
        remaining: u32,
    },
    /// A replica lifecycle transition.
    StateChange {
        /// State before.
        from: &'static str,
        /// State after.
        to: &'static str,
    },
    /// An erasure-coded strip was rebuilt from surviving strips.
    EcRebuild {
        /// Stripes reconstructed onto the replacement node.
        stripes: u32,
    },
    /// One batch of blocks copied by a live shard migration.
    MigrateBatch {
        /// Blocks copied in this batch.
        copied: u32,
        /// Blocks still to copy after it.
        remaining: u32,
    },
    /// A live migration cut over: the range's ownership moved.
    Cutover {
        /// Group the range moved from.
        from: u32,
        /// Group the range moved to.
        to: u32,
    },
}

impl EventKind {
    /// Stable kind name (payloads excluded) — the key of event-count
    /// summaries.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Admit => "admit",
            EventKind::Coalesce => "coalesce",
            EventKind::EncodeDone => "encode-done",
            EventKind::Send { .. } => "send",
            EventKind::AckOk => "ack-ok",
            EventKind::Nak => "nak",
            EventKind::AckError => "ack-error",
            EventKind::SendError => "send-error",
            EventKind::Barrier => "barrier",
            EventKind::ResyncBatch { .. } => "resync-batch",
            EventKind::StateChange { .. } => "state-change",
            EventKind::EcRebuild { .. } => "ec-rebuild",
            EventKind::MigrateBatch { .. } => "migrate-batch",
            EventKind::Cutover { .. } => "cutover",
        }
    }
}

/// One recorded event. `seq`/`lba`/`replica` default to the sentinel
/// [`Event::NONE`] where they do not apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Clock reading (nanoseconds) when the event was recorded.
    pub at: u64,
    /// What happened.
    pub kind: EventKind,
    /// Pipeline sequence number, or [`Event::NONE`].
    pub seq: u64,
    /// Logical block address, or [`Event::NONE`].
    pub lba: u64,
    /// Replica index, or [`Event::NONE`].
    pub replica: u64,
}

impl Event {
    /// Sentinel for "field not applicable".
    pub const NONE: u64 = u64::MAX;

    /// An event with every tag set to [`Event::NONE`].
    pub fn new(at: u64, kind: EventKind) -> Self {
        Self {
            at,
            kind,
            seq: Self::NONE,
            lba: Self::NONE,
            replica: Self::NONE,
        }
    }

    /// Sets the sequence tag.
    pub fn seq(mut self, seq: u64) -> Self {
        self.seq = seq;
        self
    }

    /// Sets the LBA tag.
    pub fn lba(mut self, lba: u64) -> Self {
        self.lba = lba;
        self
    }

    /// Sets the replica tag.
    pub fn replica(mut self, replica: usize) -> Self {
        self.replica = replica as u64;
        self
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={} {}", self.at, self.kind.name())?;
        match self.kind {
            EventKind::Send { writes } => write!(f, " writes={writes}")?,
            EventKind::ResyncBatch { sent, remaining } => {
                write!(f, " sent={sent} remaining={remaining}")?;
            }
            EventKind::StateChange { from, to } => write!(f, " {from}->{to}")?,
            EventKind::EcRebuild { stripes } => write!(f, " stripes={stripes}")?,
            EventKind::MigrateBatch { copied, remaining } => {
                write!(f, " copied={copied} remaining={remaining}")?;
            }
            EventKind::Cutover { from, to } => write!(f, " {from}->{to}")?,
            _ => {}
        }
        if self.seq != Self::NONE {
            write!(f, " seq={}", self.seq)?;
        }
        if self.lba != Self::NONE {
            write!(f, " lba={}", self.lba)?;
        }
        if self.replica != Self::NONE {
            write!(f, " r={}", self.replica)?;
        }
        Ok(())
    }
}

#[derive(Debug, Default)]
struct RingInner {
    buf: VecDeque<Event>,
    counts: BTreeMap<&'static str, u64>,
    dropped: u64,
}

/// A bounded ring of [`Event`]s plus exact per-kind totals.
///
/// When the ring is full the oldest event is dropped (and counted);
/// the per-kind totals never lose anything, so event-count summaries
/// stay exact regardless of capacity.
#[derive(Debug)]
pub struct EventRing {
    inner: Mutex<RingInner>,
    cap: usize,
}

impl EventRing {
    /// A ring holding at most `cap` events.
    pub fn new(cap: usize) -> Self {
        Self {
            inner: Mutex::new(RingInner::default()),
            cap: cap.max(1),
        }
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Appends one event.
    pub fn record(&self, event: Event) {
        let mut inner = self.inner.lock().unwrap();
        *inner.counts.entry(event.kind.name()).or_insert(0) += 1;
        if inner.buf.len() >= self.cap {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(event);
    }

    /// Events currently buffered (oldest first), without draining.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().unwrap().buf.iter().copied().collect()
    }

    /// Removes and returns every buffered event (totals are kept).
    pub fn drain(&self) -> Vec<Event> {
        self.inner.lock().unwrap().buf.drain(..).collect()
    }

    /// Exact per-kind totals since construction (drops included).
    pub fn counts(&self) -> BTreeMap<&'static str, u64> {
        self.inner.lock().unwrap().counts.clone()
    }

    /// Total for one kind name.
    pub fn count(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .unwrap()
            .counts
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// The buffered events as one newline-joined deterministic trace.
    pub fn trace(&self) -> String {
        self.events()
            .iter()
            .map(Event::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_bounds_events_but_keeps_exact_counts() {
        let ring = EventRing::new(4);
        for i in 0..10u64 {
            ring.record(Event::new(i, EventKind::Admit).seq(i));
        }
        assert_eq!(ring.events().len(), 4);
        assert_eq!(ring.dropped(), 6);
        assert_eq!(ring.count("admit"), 10);
        assert_eq!(ring.events()[0].seq, 6, "oldest events fell off");
    }

    #[test]
    fn drain_empties_the_buffer_not_the_totals() {
        let ring = EventRing::new(8);
        ring.record(Event::new(1, EventKind::AckOk).replica(0));
        ring.record(Event::new(2, EventKind::Nak).replica(1));
        let drained = ring.drain();
        assert_eq!(drained.len(), 2);
        assert!(ring.events().is_empty());
        assert_eq!(ring.count("ack-ok"), 1);
        assert_eq!(ring.count("nak"), 1);
    }

    #[test]
    fn per_kind_counts_stay_exact_across_threaded_wraparound() {
        use std::sync::Arc;
        // 4 threads push 200 events each through a 64-slot ring: the
        // buffer wraps many times over, but the per-kind totals must
        // come out exact and the ring must hold exactly `cap` events.
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 200;
        let ring = Arc::new(EventRing::new(64));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        let kind = match i % 4 {
                            0 => EventKind::Admit,
                            1 => EventKind::Send { writes: 1 },
                            2 => EventKind::AckOk,
                            _ => EventKind::Nak,
                        };
                        ring.record(Event::new(t * PER_THREAD + i, kind).seq(i));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let total = THREADS * PER_THREAD;
        for kind in ["admit", "send", "ack-ok", "nak"] {
            assert_eq!(ring.count(kind), total / 4, "kind {kind}");
        }
        assert_eq!(ring.counts().values().sum::<u64>(), total);
        assert_eq!(ring.events().len(), ring.capacity());
        assert_eq!(ring.dropped(), total - ring.capacity() as u64);
    }

    #[test]
    fn events_render_deterministically() {
        let e = Event::new(
            42,
            EventKind::StateChange {
                from: "online",
                to: "lagging",
            },
        )
        .replica(2);
        assert_eq!(e.to_string(), "t=42 state-change online->lagging r=2");
        let s = Event::new(7, EventKind::Send { writes: 3 }).seq(5).lba(1);
        assert_eq!(s.to_string(), "t=7 send writes=3 seq=5 lba=1");
    }
}
