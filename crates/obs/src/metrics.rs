//! The three metric primitives: counters, gauges, and log2 histograms.
//!
//! All three are plain `std::sync::atomic` word counters — safe to
//! share across the pipeline's encode pool and sender lanes with no
//! locks on the record path, and cheap enough to leave enabled in
//! production builds.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i > 0`
/// holds values in `[2^(i-1), 2^i)`, and the last bucket absorbs
/// everything from `2^62` up.
pub const BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depth, dirty
/// blocks, resync frames pending).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if it is higher (high-water marks).
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log2 histogram of `u64` samples (typically
/// nanoseconds).
///
/// Recording is one `fetch_add` per sample plus three bookkeeping
/// atomics — no locks, no allocation — so it is safe on the hottest
/// paths. Percentiles are estimated as the upper edge of the bucket
/// holding the requested rank, which bounds the estimation error by
/// one bucket width (a factor of two in value).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index of a value: 0 for 0, else `floor(log2(v)) + 1`, capped
/// at the last bucket.
pub(crate) fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive lower edge of bucket `i`.
pub(crate) fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Inclusive upper edge of bucket `i`.
pub(crate) fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records the span from `started` (a [`Clock::now_nanos`] reading)
    /// to now.
    ///
    /// [`Clock::now_nanos`]: prins_net::Clock::now_nanos
    pub fn record_since(&self, clock: &dyn prins_net::Clock, started: u64) {
        self.record(clock.now_nanos().saturating_sub(started));
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// Folds `other`'s samples into `self` (per-thread partials merge
    /// into one distribution; max and sum merge exactly, percentiles as
    /// well since buckets align).
    pub fn merge(&self, other: &Histogram) {
        for i in 0..BUCKETS {
            let n = other.buckets[i].load(Ordering::Relaxed);
            if n > 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Estimated `permille/1000` quantile: the upper edge of the bucket
    /// containing that rank, clamped to the observed maximum. Integer
    /// math throughout — deterministic across runs and platforms.
    ///
    /// Edges: an empty histogram is 0 at every quantile, and
    /// `permille == 0` is the *lower* edge of the first non-empty
    /// bucket (a minimum-side estimate), so quantiles are monotone in
    /// `permille` and `p0` never exceeds any recorded sample.
    pub fn quantile_permille(&self, permille: u64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        if permille == 0 {
            for i in 0..BUCKETS {
                if self.bucket(i) > 0 {
                    return bucket_lower(i);
                }
            }
            return 0;
        }
        // Rank of the requested quantile, 1-based, rounded up.
        let rank = ((count.saturating_mul(permille)).div_ceil(1000)).max(1);
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            seen += self.bucket(i);
            if seen >= rank {
                return bucket_upper(i).min(self.max());
            }
        }
        self.max()
    }

    /// Estimated median.
    pub fn p50(&self) -> u64 {
        self.quantile_permille(500)
    }

    /// Estimated 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile_permille(900)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile_permille(990)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // Bucket 0 = {0}; bucket i = [2^(i-1), 2^i - 1].
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        for i in 1..BUCKETS - 1 {
            let lo = bucket_lower(i);
            let hi = bucket_upper(i);
            assert_eq!(bucket_index(lo), i, "lower edge of bucket {i}");
            assert_eq!(bucket_index(hi), i, "upper edge of bucket {i}");
            assert_eq!(bucket_index(hi + 1), i + 1, "first value past bucket {i}");
            assert_eq!(hi, lo * 2 - 1);
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn recording_lands_in_the_right_buckets() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024] {
            h.record(v);
        }
        assert_eq!(h.bucket(0), 1); // 0
        assert_eq!(h.bucket(1), 1); // 1
        assert_eq!(h.bucket(2), 2); // 2, 3
        assert_eq!(h.bucket(3), 2); // 4, 7
        assert_eq!(h.bucket(4), 1); // 8
        assert_eq!(h.bucket(10), 1); // 512..1023
        assert_eq!(h.bucket(11), 1); // 1024..2047
        assert_eq!(h.count(), 9);
        assert_eq!(h.max(), 1024);
        assert_eq!(h.sum(), 1 + 2 + 3 + 4 + 7 + 8 + 1023 + 1024);
    }

    #[test]
    fn percentile_error_is_bounded_by_one_bucket_width() {
        // A spread of samples across several buckets: the estimate must
        // land inside (or at the edge of) the bucket holding the true
        // rank, i.e. within one bucket width of the true value.
        let h = Histogram::new();
        let mut samples: Vec<u64> = (1..=1000u64).map(|i| i * 13 % 4096).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for permille in [500u64, 900, 990] {
            let rank = ((1000 * permille).div_ceil(1000)).max(1) as usize;
            let truth = samples[rank - 1];
            let est = h.quantile_permille(permille);
            let bucket = bucket_index(truth);
            let width = bucket_upper(bucket) - bucket_lower(bucket) + 1;
            assert!(
                est >= truth && est - truth < width,
                "p{permille}: estimate {est} vs truth {truth} (bucket width {width})"
            );
        }
    }

    #[test]
    fn quantiles_clamp_to_observed_max() {
        let h = Histogram::new();
        h.record(5); // bucket [4, 7], upper edge 7
        assert_eq!(h.p99(), 5, "clamped to max, not the bucket edge");
        assert_eq!(h.p50(), 5);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn concurrent_recording_then_merge_matches_single_threaded() {
        use std::sync::Arc;
        let combined = Histogram::new();
        let partials: Vec<Arc<Histogram>> = (0..4).map(|_| Arc::new(Histogram::new())).collect();
        let handles: Vec<_> = partials
            .iter()
            .enumerate()
            .map(|(t, part)| {
                let part = Arc::clone(part);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        part.record(t as u64 * 1000 + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        for part in &partials {
            combined.merge(part);
        }
        let reference = Histogram::new();
        for t in 0..4u64 {
            for i in 0..1000 {
                reference.record(t * 1000 + i);
            }
        }
        assert_eq!(combined.count(), reference.count());
        assert_eq!(combined.sum(), reference.sum());
        assert_eq!(combined.max(), reference.max());
        for i in 0..BUCKETS {
            assert_eq!(combined.bucket(i), reference.bucket(i), "bucket {i}");
        }
        assert_eq!(combined.p50(), reference.p50());
        assert_eq!(combined.p99(), reference.p99());
    }

    #[test]
    fn permille_zero_is_a_minimum_side_estimate() {
        let h = Histogram::new();
        assert_eq!(h.quantile_permille(0), 0, "empty histogram");
        h.record(100); // bucket [64, 127]
        h.record(5000);
        assert_eq!(h.quantile_permille(0), 64, "lower edge, not upper");
        assert!(h.quantile_permille(0) <= 100);
        assert!(h.quantile_permille(0) <= h.quantile_permille(500));
    }

    proptest::proptest! {
        /// Quantiles are monotone in `permille`, `p1000` reaches the
        /// observed max exactly, and `p0` never exceeds any sample.
        #[test]
        fn quantiles_are_monotone_in_permille(
            samples in proptest::collection::vec(0u64..1u64 << 40, 1..200),
            raw_cuts in proptest::collection::vec(0u64..=1000, 2..8),
        ) {
            let h = Histogram::new();
            for &s in &samples {
                h.record(s);
            }
            let mut cuts = raw_cuts;
            cuts.sort_unstable();
            for pair in cuts.windows(2) {
                proptest::prop_assert!(
                    h.quantile_permille(pair[0]) <= h.quantile_permille(pair[1]),
                    "q({}) > q({})", pair[0], pair[1]
                );
            }
            let min = *samples.iter().min().unwrap();
            proptest::prop_assert!(h.quantile_permille(0) <= min);
            proptest::prop_assert_eq!(h.quantile_permille(1000), h.max());
        }
    }

    #[test]
    fn gauge_set_max_keeps_the_high_water_mark() {
        let g = Gauge::new();
        g.set_max(5);
        g.set_max(3);
        assert_eq!(g.get(), 5);
        g.set(1);
        assert_eq!(g.get(), 1);
    }
}
