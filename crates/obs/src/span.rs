//! Stage spans: RAII guards that time a scope into a [`Histogram`].

use crate::metrics::Histogram;
use prins_net::Clock;

/// Times the scope from construction to drop and records the elapsed
/// nanoseconds into a [`Histogram`].
///
/// The clock is injected, so the same code path is deterministic under
/// a [`SimClock`](prins_net::SimClock) and real under
/// [`WallClock`](prins_net::WallClock).
///
/// ```
/// use prins_obs::{Histogram, Span};
/// use prins_net::WallClock;
///
/// let clock = WallClock::new();
/// let hist = Histogram::new();
/// {
///     let _span = Span::start(&clock, &hist);
///     // timed work
/// }
/// assert_eq!(hist.count(), 1);
/// ```
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span<'a> {
    clock: &'a dyn Clock,
    hist: &'a Histogram,
    started: u64,
    armed: bool,
}

impl<'a> Span<'a> {
    /// Starts timing now.
    #[inline]
    pub fn start(clock: &'a dyn Clock, hist: &'a Histogram) -> Self {
        Self {
            started: clock.now_nanos(),
            clock,
            hist,
            armed: true,
        }
    }

    /// The clock reading taken at construction.
    pub fn started_at(&self) -> u64 {
        self.started
    }

    /// Records now instead of at drop and disarms the guard.
    #[inline]
    pub fn finish(mut self) -> u64 {
        self.armed = false;
        let elapsed = self.clock.now_nanos().saturating_sub(self.started);
        self.hist.record(elapsed);
        elapsed
    }

    /// Disarms the guard: nothing is recorded.
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for Span<'_> {
    #[inline]
    fn drop(&mut self) {
        if self.armed {
            self.hist
                .record(self.clock.now_nanos().saturating_sub(self.started));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prins_net::SimClock;

    #[test]
    fn span_records_virtual_elapsed_time() {
        let clock = SimClock::new();
        let hist = Histogram::new();
        {
            let _span = Span::start(&*clock, &hist);
            clock.advance_to(1500);
        }
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.sum(), 1500);
    }

    #[test]
    fn finish_records_once_and_returns_elapsed() {
        let clock = SimClock::new();
        let hist = Histogram::new();
        let span = Span::start(&*clock, &hist);
        clock.advance_to(250);
        assert_eq!(span.finish(), 250);
        assert_eq!(hist.count(), 1, "finish must not double-record via drop");
    }

    #[test]
    fn cancel_records_nothing() {
        let clock = SimClock::new();
        let hist = Histogram::new();
        let span = Span::start(&*clock, &hist);
        clock.advance_to(99);
        span.cancel();
        assert_eq!(hist.count(), 0);
    }

    /// The span fast path (two dyn clock reads + one histogram record)
    /// must stay under 100ns of wall time per span in release builds —
    /// cheap enough to leave enabled on the hottest stages. Gated to
    /// release: debug builds don't inline the path.
    #[test]
    #[cfg(not(debug_assertions))]
    fn span_overhead_is_under_100ns_in_release() {
        use prins_net::WallClock;
        const SPANS: u32 = 10_000;
        let clock = WallClock::new();
        let hist = Histogram::new();
        // Min over several batches: immune to a single scheduler blip.
        let mut best = u64::MAX;
        for _ in 0..8 {
            let begin = std::time::Instant::now();
            for _ in 0..SPANS {
                let span = Span::start(&clock, &hist);
                std::hint::black_box(&span);
                drop(span);
            }
            let nanos = begin.elapsed().as_nanos() as u64 / u64::from(SPANS);
            best = best.min(nanos);
        }
        assert_eq!(hist.count() as u32, 8 * SPANS);
        assert!(best < 100, "span overhead {best}ns/span, budget 100ns");
    }
}
