//! Adapter surfacing [`TrafficMeter`]s in a [`Registry`].
//!
//! `prins-net` cannot depend on `prins-obs` (the dependency points the
//! other way, since spans need the `Clock` trait), so the bridge lives
//! here: a snapshot-time collector copies the meter's counters into
//! prefixed gauges.

use std::sync::Arc;

use prins_net::TrafficMeter;

use crate::registry::Registry;

/// Registers a collector that publishes `meter`'s counters as gauges
/// named `<prefix>_messages_sent`, `<prefix>_payload_bytes_sent`,
/// `<prefix>_wire_bytes_sent`, and so on, refreshed at every
/// [`Registry::snapshot`].
pub fn register_meter(registry: &Registry, prefix: &str, meter: Arc<TrafficMeter>) {
    let prefix = prefix.to_string();
    registry.add_collector(Box::new(move |reg| {
        let snap = meter.snapshot();
        for (suffix, value) in [
            ("messages_sent", snap.messages_sent),
            ("messages_received", snap.messages_received),
            ("payload_bytes_sent", snap.payload_bytes_sent),
            ("payload_bytes_received", snap.payload_bytes_received),
            ("wire_bytes_sent", snap.wire_bytes_sent),
            ("packets_sent", snap.packets_sent),
        ] {
            reg.gauge(&format!("{prefix}_{suffix}")).set(value);
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use prins_net::LinkModel;

    #[test]
    fn meter_counters_surface_as_prefixed_gauges() {
        let reg = Registry::new();
        let meter = TrafficMeter::shared(LinkModel::t1());
        register_meter(&reg, "net_r0", Arc::clone(&meter));
        meter.record_send(8192);
        meter.record_recv(16);
        let snap = reg.snapshot();
        assert_eq!(snap.gauges["net_r0_messages_sent"], 1);
        assert_eq!(snap.gauges["net_r0_payload_bytes_sent"], 8192);
        assert_eq!(snap.gauges["net_r0_payload_bytes_received"], 16);
        assert!(snap.gauges["net_r0_wire_bytes_sent"] > 8192);
        // Refreshes on the next snapshot.
        meter.record_send(100);
        assert_eq!(reg.snapshot().gauges["net_r0_messages_sent"], 2);
    }
}
