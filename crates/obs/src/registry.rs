//! The central, lock-light metric registry.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use crate::events::EventRing;
use crate::export::Snapshot;
use crate::metrics::{Counter, Gauge, Histogram};

/// A collector is called at snapshot time to publish values that live
/// outside the registry (engine atomics, traffic meters) into it.
pub type Collector = Box<dyn Fn(&Registry) + Send + Sync>;

/// Default event-ring capacity: enough for every event of a multi-
/// thousand-write benchmark run.
const DEFAULT_EVENT_CAP: usize = 65_536;

/// A named collection of [`Counter`]s, [`Gauge`]s, [`Histogram`]s and
/// one shared [`EventRing`].
///
/// Lookup (`counter`/`gauge`/`histogram`) takes a short mutex on a
/// `BTreeMap` and returns an `Arc` the caller keeps — the hot record
/// path then touches only atomics. Instruments are created on first
/// use and never removed, so names are stable for the life of the
/// registry. `BTreeMap` keeps every export in sorted key order, which
/// the determinism contract requires.
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    collectors: Mutex<Vec<Collector>>,
    events: EventRing,
}

impl Default for Registry {
    fn default() -> Self {
        Self::with_event_capacity(DEFAULT_EVENT_CAP)
    }
}

impl Registry {
    /// A registry with the default event-ring capacity.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// A registry whose event ring holds at most `cap` events.
    pub fn with_event_capacity(cap: usize) -> Self {
        Self {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            collectors: Mutex::new(Vec::new()),
            events: EventRing::new(cap),
        }
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Registers a closure run at the start of every [`snapshot`]
    /// (latest registration runs last, so it wins on name collisions).
    ///
    /// [`snapshot`]: Registry::snapshot
    pub fn add_collector(&self, collector: Collector) {
        self.collectors.lock().unwrap().push(collector);
    }

    /// The shared event ring.
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// Runs the collectors, then freezes every instrument and the
    /// buffered events into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let collectors = std::mem::take(&mut *self.collectors.lock().unwrap());
        for collector in &collectors {
            collector(self);
        }
        self.collectors.lock().unwrap().splice(0..0, collectors);

        Snapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), crate::export::HistogramSnapshot::of(v)))
                .collect(),
            event_counts: self
                .events
                .counts()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            events: self.events.events(),
            events_dropped: self.events.dropped(),
        }
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("counters", &self.counters.lock().unwrap().len())
            .field("gauges", &self.gauges.lock().unwrap().len())
            .field("histograms", &self.histograms.lock().unwrap().len())
            .field("collectors", &self.collectors.lock().unwrap().len())
            .field("events", &self.events.counts())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{Event, EventKind};

    #[test]
    fn instruments_are_created_once_and_shared() {
        let reg = Registry::new();
        reg.counter("writes").add(3);
        reg.counter("writes").add(4);
        assert_eq!(reg.counter("writes").get(), 7);
        assert!(Arc::ptr_eq(&reg.counter("writes"), &reg.counter("writes")));
    }

    #[test]
    fn collectors_run_at_snapshot_time() {
        let reg = Registry::new();
        let source = Arc::new(Counter::new());
        let src = Arc::clone(&source);
        reg.add_collector(Box::new(move |r| r.gauge("mirrored").set(src.get())));
        source.add(11);
        assert_eq!(reg.snapshot().gauges["mirrored"], 11);
        source.add(1);
        assert_eq!(reg.snapshot().gauges["mirrored"], 12, "re-runs every time");
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = Registry::new();
        reg.counter("b").inc();
        reg.counter("a").inc();
        reg.histogram("h").record(5);
        reg.events().record(Event::new(1, EventKind::Barrier));
        let snap = reg.snapshot();
        let keys: Vec<_> = snap.counters.keys().cloned().collect();
        assert_eq!(keys, ["a", "b"]);
        assert_eq!(snap.histograms["h"].count, 1);
        assert_eq!(snap.event_counts["barrier"], 1);
        assert_eq!(snap.events.len(), 1);
    }
}
