//! The anomaly flight recorder: a bounded ring of completed traces.
//!
//! [`TraceSink`](crate::TraceSink) pushes every finalized trace that is
//! part of the deterministic 1-in-N sample or flagged anomalous; the
//! ring keeps the newest [`TraceConfig::retain`](crate::TraceConfig)
//! of them. The deque is allocated to capacity up front and eviction
//! pops before pushing, so steady-state retention performs no heap
//! allocation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::trace::{TraceEvent, TraceId, MAX_TRACE_EVENTS, NO_LANE};

/// A finalized trace as retained by the recorder: fixed-size, copyable.
#[derive(Clone, Copy, Debug)]
pub struct CompletedTrace {
    /// The trace's identity.
    pub id: TraceId,
    /// Shard tag the trace was opened under.
    pub shard: u32,
    /// Application writes riding the trace (1 + coalesced folds).
    pub writes: u32,
    /// Retransmissions booked while the trace was live.
    pub retransmits: u32,
    /// Stale-epoch responses dropped while the trace waited.
    pub wrong_epoch: u32,
    /// Clock reading at trace birth.
    pub started_at: u64,
    /// Clock reading at the final completion.
    pub finished_at: u64,
    /// Retained because it breached a threshold.
    pub anomaly: bool,
    /// Retained by the deterministic 1-in-N sample.
    pub sampled: bool,
    /// Some hops were dropped after the event buffer filled.
    pub truncated: bool,
    /// Events recorded (prefix of `events` that is valid).
    pub len: u8,
    /// The hop records, in append order.
    pub events: [TraceEvent; MAX_TRACE_EVENTS],
}

impl CompletedTrace {
    /// End-to-end latency in virtual nanoseconds.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.finished_at.saturating_sub(self.started_at)
    }

    /// The valid hop records.
    #[must_use]
    pub fn hops(&self) -> &[TraceEvent] {
        &self.events[..self.len as usize]
    }

    /// One-line deterministic JSON for this trace (integers and
    /// stage-name strings only, keys in sorted order).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"anomaly\":{},\"events\":[",
            if self.anomaly { 1 } else { 0 }
        );
        for (i, hop) in self.hops().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"at\":{},\"bytes\":{},\"lane\":{},\"stage\":\"{}\"}}",
                hop.at,
                hop.bytes,
                if hop.lane == NO_LANE {
                    -1i64
                } else {
                    i64::from(hop.lane)
                },
                hop.stage.name()
            );
        }
        let _ = write!(
            out,
            "],\"finished_at\":{},\"id\":\"{}\",\"latency\":{},\"retransmits\":{},\
             \"sampled\":{},\"shard\":{},\"started_at\":{},\"truncated\":{},\
             \"wrong_epoch\":{},\"writes\":{}}}",
            self.finished_at,
            self.id,
            self.latency(),
            self.retransmits,
            if self.sampled { 1 } else { 0 },
            self.shard,
            self.started_at,
            if self.truncated { 1 } else { 0 },
            self.wrong_epoch,
            self.writes
        );
        out
    }
}

/// Bounded ring of retained [`CompletedTrace`]s, newest last.
pub struct FlightRecorder {
    inner: Mutex<std::collections::VecDeque<CompletedTrace>>,
    cap: usize,
    pushed: AtomicU64,
    dropped: AtomicU64,
}

impl FlightRecorder {
    /// A recorder retaining at most `cap` traces.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            inner: Mutex::new(std::collections::VecDeque::with_capacity(cap)),
            cap,
            pushed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Retains `trace`, evicting the oldest once full. Allocation-free
    /// in steady state: the deque never grows past its initial
    /// capacity because eviction pops first.
    pub fn push(&self, trace: CompletedTrace) {
        self.pushed.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.inner.lock().unwrap();
        if ring.len() >= self.cap {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(trace);
    }

    /// Traces currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// True when nothing has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Traces ever pushed (retained plus later evicted).
    #[must_use]
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Retained traces later evicted to make room.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// A copy of the retained traces, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<CompletedTrace> {
        self.inner.lock().unwrap().iter().copied().collect()
    }

    /// Every retained trace as one JSON line each, oldest first.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        for trace in self.snapshot() {
            out.push_str(&trace.to_json());
            out.push('\n');
        }
        out
    }

    /// Retained traces as a human table, oldest first.
    #[must_use]
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let traces = self.snapshot();
        if traces.is_empty() {
            return String::from("flight recorder: empty\n");
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>5} {:>6} {:>12} {:>7} {:>6} {:>4} hops",
            "trace", "shard", "writes", "latency(ns)", "retrans", "wepoch", "flag"
        );
        for t in traces {
            let flag = if t.anomaly { "anom" } else { "samp" };
            let _ = write!(
                out,
                "{:<16} {:>5} {:>6} {:>12} {:>7} {:>6} {:>4} ",
                format!("{}", t.id),
                t.shard,
                t.writes,
                t.latency(),
                t.retransmits,
                t.wrong_epoch,
                flag
            );
            for (i, hop) in t.hops().iter().enumerate() {
                if i > 0 {
                    out.push_str(" > ");
                }
                let _ = write!(out, "{}", hop.stage.name());
                if hop.lane != NO_LANE {
                    let _ = write!(out, "[{}]", hop.lane);
                }
                let _ = write!(out, "@{}", hop.at.saturating_sub(t.started_at));
            }
            if t.truncated {
                out.push_str(" > ...");
            }
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("cap", &self.cap)
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceStage;

    fn trace(seq: u64, latency: u64) -> CompletedTrace {
        let mut events = [TraceEvent {
            at: 0,
            stage: TraceStage::Capture,
            lane: NO_LANE,
            bytes: 0,
        }; MAX_TRACE_EVENTS];
        events[1] = TraceEvent {
            at: latency,
            stage: TraceStage::Ack,
            lane: 0,
            bytes: 64,
        };
        CompletedTrace {
            id: TraceId::from_seq(seq),
            shard: 0,
            writes: 1,
            retransmits: 0,
            wrong_epoch: 0,
            started_at: 0,
            finished_at: latency,
            anomaly: false,
            sampled: true,
            truncated: false,
            len: 2,
            events,
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_evictions() {
        let rec = FlightRecorder::new(2);
        for seq in 0..5 {
            rec.push(trace(seq, 100 + seq));
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.pushed(), 5);
        assert_eq!(rec.dropped(), 3);
        let kept = rec.snapshot();
        assert_eq!(kept[0].id, TraceId::from_seq(3));
        assert_eq!(kept[1].id, TraceId::from_seq(4));
    }

    #[test]
    fn ring_never_grows_past_initial_capacity() {
        let rec = FlightRecorder::new(8);
        let cap_before = rec.inner.lock().unwrap().capacity();
        for seq in 0..100 {
            rec.push(trace(seq, seq));
        }
        assert_eq!(rec.inner.lock().unwrap().capacity(), cap_before);
    }

    #[test]
    fn trace_json_is_deterministic_with_stage_names() {
        let rec = FlightRecorder::new(4);
        rec.push(trace(7, 250));
        let a = rec.to_json();
        assert_eq!(a, rec.to_json());
        assert!(a.contains("\"stage\":\"ack\""), "{a}");
        assert!(a.contains("\"latency\":250"), "{a}");
        assert!(a.ends_with('\n'));
        let table = rec.to_table();
        assert!(table.contains("capture@0 > ack[0]@250"), "{table}");
    }
}
