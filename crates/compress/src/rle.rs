//! Byte-level run-length encoding.
//!
//! Used as an ablation baseline: parity blocks are dominated by zero runs,
//! so RLE alone captures much of the PRINS encoding win; LZSS captures
//! repeated structure as well. Comparing the two quantifies how much of
//! the savings comes from zero suppression versus general redundancy.

use crate::{Codec, CompressError};

/// Run-length codec.
///
/// Stream format: a sequence of `(count, byte)` pairs where `count` is a
/// LEB128 varint ≥ 1.
///
/// # Example
///
/// ```
/// use prins_compress::{Codec, Rle};
///
/// let data = [0u8; 1000];
/// let packed = Rle.compress(&data);
/// assert!(packed.len() <= 3);
/// assert_eq!(Rle.decompress(&packed, 1000).unwrap(), data);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Rle;

impl Codec for Rle {
    fn compress(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < data.len() {
            let byte = data[i];
            let mut run = 1usize;
            while i + run < data.len() && data[i + run] == byte {
                run += 1;
            }
            let mut v = run as u64;
            loop {
                let b = (v & 0x7f) as u8;
                v >>= 7;
                if v == 0 {
                    out.push(b);
                    break;
                }
                out.push(b | 0x80);
            }
            out.push(byte);
            i += run;
        }
        out
    }

    fn decompress(&self, data: &[u8], expected_len: usize) -> Result<Vec<u8>, CompressError> {
        let mut out = Vec::with_capacity(expected_len);
        let mut pos = 0usize;
        while pos < data.len() {
            // varint count
            let mut count: u64 = 0;
            let mut shift = 0u32;
            loop {
                let byte = *data.get(pos).ok_or(CompressError::Truncated)?;
                pos += 1;
                if shift >= 63 && byte > 0x01 {
                    return Err(CompressError::BadToken);
                }
                count |= ((byte & 0x7f) as u64) << shift;
                if byte & 0x80 == 0 {
                    break;
                }
                shift += 7;
            }
            if count == 0 {
                return Err(CompressError::BadToken);
            }
            let byte = *data.get(pos).ok_or(CompressError::Truncated)?;
            pos += 1;
            if out.len() + count as usize > expected_len {
                return Err(CompressError::LengthMismatch {
                    produced: out.len() + count as usize,
                    expected: expected_len,
                });
            }
            out.extend(std::iter::repeat_n(byte, count as usize));
        }
        if out.len() != expected_len {
            return Err(CompressError::LengthMismatch {
                produced: out.len(),
                expected: expected_len,
            });
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "rle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(data: &[u8]) -> usize {
        let packed = Rle.compress(data);
        assert_eq!(Rle.decompress(&packed, data.len()).unwrap(), data);
        packed.len()
    }

    #[test]
    fn empty_input() {
        assert_eq!(roundtrip(&[]), 0);
    }

    #[test]
    fn long_runs_collapse() {
        assert!(roundtrip(&vec![9u8; 100_000]) <= 4);
    }

    #[test]
    fn alternating_bytes_expand_by_factor_two() {
        let data: Vec<u8> = (0..100).map(|i| (i % 2) as u8).collect();
        assert_eq!(roundtrip(&data), 200);
    }

    #[test]
    fn rejects_truncated_and_zero_count() {
        assert!(Rle.decompress(&[5], 5).is_err()); // count without byte
        assert!(Rle.decompress(&[0, 7], 0).is_err()); // zero count
    }

    #[test]
    fn rejects_wrong_length() {
        let packed = Rle.compress(&[1, 1, 1]);
        assert!(Rle.decompress(&packed, 2).is_err());
        assert!(Rle.decompress(&packed, 4).is_err());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
            roundtrip(&data);
        }
    }
}
