//! Greedy LZ77/LZSS compressor with hash-chain match finding.
//!
//! Token stream format (all integers LEB128 varints):
//!
//! ```text
//! stream  := token*
//! token   := literal | match
//! literal := varint(len << 1)       len >= 1, followed by `len` raw bytes
//! match   := varint(len << 1 | 1)   len >= MIN_MATCH
//!            varint(distance)       1 <= distance <= window
//! ```
//!
//! The encoder is greedy with a bounded hash-chain search — the same
//! design point as zlib's fast levels, which is what a replication engine
//! would actually run in its data path.

use crate::{Codec, CompressError};

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 1 << 16;
const HASH_BITS: usize = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// Upper bound on `expected_len` accepted by [`Lzss::decompress`].
///
/// Wire frames carry length claims the decoder must not trust: a corrupt
/// or hostile header must never translate into an attacker-chosen
/// allocation. The budget is far above the largest block the replication
/// stack ships (64 KB) and far below anything that could hurt; claims
/// beyond it are rejected as [`CompressError::BadToken`] before any
/// buffer is reserved.
pub const MAX_DECODE_LEN: usize = 1 << 20;

fn encode_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn decode_varint(buf: &[u8], pos: &mut usize) -> Result<u64, CompressError> {
    let mut value: u64 = 0;
    for i in 0..10 {
        let byte = *buf.get(*pos + i).ok_or(CompressError::Truncated)?;
        if i == 9 && byte > 0x01 {
            return Err(CompressError::BadToken);
        }
        value |= ((byte & 0x7f) as u64) << (7 * i);
        if byte & 0x80 == 0 {
            *pos += i + 1;
            return Ok(value);
        }
    }
    Err(CompressError::BadToken)
}

fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// LZSS codec configuration.
///
/// # Example
///
/// ```
/// use prins_compress::{Codec, Lzss};
///
/// let fast = Lzss::fast();
/// let thorough = Lzss::new(1 << 15, 128);
/// let data = vec![7u8; 1000];
/// assert!(thorough.compress(&data).len() <= fast.compress(&data).len() + 8);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lzss {
    window: usize,
    max_chain: usize,
}

impl Lzss {
    /// Creates a codec with a given window size (clamped to 32 KB) and
    /// hash-chain search depth.
    pub fn new(window: usize, max_chain: usize) -> Self {
        Self {
            window: window.clamp(256, 1 << 15),
            max_chain: max_chain.max(1),
        }
    }

    /// A fast configuration (shallow chains), comparable to `zlib -1`.
    pub fn fast() -> Self {
        Self::new(1 << 15, 8)
    }

    /// The search window in bytes.
    pub fn window(&self) -> usize {
        self.window
    }

    fn find_match(
        &self,
        data: &[u8],
        pos: usize,
        head: &[i64],
        prev: &[i64],
    ) -> Option<(usize, usize)> {
        if pos + MIN_MATCH > data.len() {
            return None;
        }
        let h = hash4(&data[pos..]);
        let mut cand = head[h];
        let min_pos = pos.saturating_sub(self.window) as i64;
        let max_len = (data.len() - pos).min(MAX_MATCH);
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut chain = 0usize;
        while cand >= min_pos && cand >= 0 && chain < self.max_chain {
            let c = cand as usize;
            debug_assert!(c < pos);
            // Quick reject: compare the byte one past the current best.
            if data[c + best_len] == data[pos + best_len.min(max_len - 1)] {
                let mut len = 0usize;
                while len < max_len && data[c + len] == data[pos + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = pos - c;
                    if len == max_len {
                        break;
                    }
                }
            }
            // Chains are built by pushing strictly increasing positions,
            // so a well-formed chain is strictly decreasing when walked.
            // The `prev` table is a ring indexed by `pos % window`; a slot
            // could only be clobbered by a position at least one full
            // window later, which the `cand >= min_pos` guard already
            // excludes — but terminate explicitly on any non-decreasing
            // link so a corrupted slot ends the chain instead of
            // teleporting the search to an unrelated position.
            let next = prev[c % self.window];
            if next >= cand {
                break;
            }
            cand = next;
            chain += 1;
        }
        if best_len >= MIN_MATCH {
            Some((best_len, best_dist))
        } else {
            None
        }
    }
}

impl Default for Lzss {
    /// Window 32 KB, chain depth 32 — comparable to zlib's default level.
    fn default() -> Self {
        Self::new(1 << 15, 32)
    }
}

impl Codec for Lzss {
    fn compress(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len() / 2 + 16);
        let mut head = vec![-1i64; HASH_SIZE];
        let mut prev = vec![-1i64; self.window];
        let mut literal_start = 0usize;
        let mut pos = 0usize;

        let flush_literals = |out: &mut Vec<u8>, start: usize, end: usize| {
            let mut s = start;
            while s < end {
                let len = (end - s).min(1 << 20);
                encode_varint(out, (len as u64) << 1);
                out.extend_from_slice(&data[s..s + len]);
                s += len;
            }
        };

        while pos < data.len() {
            let found = self.find_match(data, pos, &head, &prev);
            match found {
                Some((len, dist)) => {
                    flush_literals(&mut out, literal_start, pos);
                    encode_varint(&mut out, ((len as u64) << 1) | 1);
                    encode_varint(&mut out, dist as u64);
                    // Insert every position of the match into the chains.
                    let end = pos + len;
                    while pos < end {
                        if pos + MIN_MATCH <= data.len() {
                            let h = hash4(&data[pos..]);
                            prev[pos % self.window] = head[h];
                            head[h] = pos as i64;
                        }
                        pos += 1;
                    }
                    literal_start = pos;
                }
                None => {
                    if pos + MIN_MATCH <= data.len() {
                        let h = hash4(&data[pos..]);
                        prev[pos % self.window] = head[h];
                        head[h] = pos as i64;
                    }
                    pos += 1;
                }
            }
        }
        flush_literals(&mut out, literal_start, data.len());
        out
    }

    fn decompress(&self, data: &[u8], expected_len: usize) -> Result<Vec<u8>, CompressError> {
        if expected_len > MAX_DECODE_LEN {
            return Err(CompressError::BadToken);
        }
        // Reserve no more than the stream could plausibly produce; a
        // short corrupt stream claiming a large `expected_len` grows the
        // buffer only as far as its tokens actually validate.
        let mut out = Vec::with_capacity(expected_len.min(data.len().saturating_mul(8)));
        let mut pos = 0usize;
        while pos < data.len() {
            let tok = decode_varint(data, &mut pos)?;
            let len = (tok >> 1) as usize;
            if len == 0 {
                return Err(CompressError::BadToken);
            }
            if tok & 1 == 0 {
                // Literal run.
                if pos + len > data.len() {
                    return Err(CompressError::Truncated);
                }
                if len > expected_len - out.len() {
                    return Err(CompressError::LengthMismatch {
                        produced: out.len().saturating_add(len),
                        expected: expected_len,
                    });
                }
                out.extend_from_slice(&data[pos..pos + len]);
                pos += len;
            } else {
                let dist = decode_varint(data, &mut pos)? as usize;
                if dist == 0 || dist > out.len() {
                    return Err(CompressError::BadBackreference {
                        distance: dist,
                        available: out.len(),
                    });
                }
                // Check the output budget before copying: a hostile
                // match length must not grow the buffer past the claim.
                if len > expected_len - out.len() {
                    return Err(CompressError::LengthMismatch {
                        produced: out.len().saturating_add(len),
                        expected: expected_len,
                    });
                }
                // Overlapping copies are the LZ idiom for runs.
                let start = out.len() - dist;
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
        if out.len() != expected_len {
            return Err(CompressError::LengthMismatch {
                produced: out.len(),
                expected: expected_len,
            });
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "lzss"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{RngExt, SeedableRng};

    fn roundtrip(codec: &Lzss, data: &[u8]) -> usize {
        let packed = codec.compress(data);
        assert_eq!(
            codec.decompress(&packed, data.len()).unwrap(),
            data,
            "roundtrip failed for len={}",
            data.len()
        );
        packed.len()
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let c = Lzss::default();
        assert_eq!(roundtrip(&c, &[]), 0);
        roundtrip(&c, &[1]);
        roundtrip(&c, &[1, 2, 3]);
        roundtrip(&c, &[0, 0, 0, 0]);
    }

    #[test]
    fn repetitive_data_compresses_hard() {
        let c = Lzss::default();
        let data = vec![0x41u8; 8192];
        let packed = roundtrip(&c, &data);
        assert!(packed < 64, "run of one byte should collapse, got {packed}");
    }

    #[test]
    fn english_like_text_compresses_well() {
        let c = Lzss::default();
        let sentence = b"select c_id from customer where c_w_id = 3 and c_d_id = 7; ";
        let mut data = Vec::new();
        for _ in 0..100 {
            data.extend_from_slice(sentence);
        }
        let packed = roundtrip(&c, &data);
        assert!(
            packed * 5 < data.len(),
            "repeated text should compress >5x, got {} / {}",
            packed,
            data.len()
        );
    }

    #[test]
    fn random_data_expands_only_slightly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let data: Vec<u8> = (0..8192).map(|_| rng.random()).collect();
        let c = Lzss::default();
        let packed = roundtrip(&c, &data);
        assert!(packed <= data.len() + data.len() / 64 + 16);
    }

    #[test]
    fn overlapping_backreference_run() {
        let c = Lzss::default();
        // "abcabcabc..." forces dist=3 overlapping copies.
        let data: Vec<u8> = std::iter::repeat(*b"abc").flatten().take(999).collect();
        roundtrip(&c, &data);
    }

    #[test]
    fn window_limits_match_distance() {
        let small = Lzss::new(256, 32);
        let mut data = vec![0u8; 2048];
        data[..64].fill(7);
        data[1984..].fill(7); // same content, but > 256 bytes away
        roundtrip(&small, &data);
    }

    /// Exhaustive greedy reference encoder: at every position it scans
    /// the whole window nearest-first for the longest match, exactly the
    /// policy the hash-chain search implements with unbounded depth.
    fn oracle_compress(data: &[u8], window: usize) -> Vec<u8> {
        let mut out = Vec::new();
        let mut literal_start = 0usize;
        let mut pos = 0usize;
        let flush = |out: &mut Vec<u8>, start: usize, end: usize| {
            let mut s = start;
            while s < end {
                let len = (end - s).min(1 << 20);
                encode_varint(out, (len as u64) << 1);
                out.extend_from_slice(&data[s..s + len]);
                s += len;
            }
        };
        while pos < data.len() {
            let mut best_len = MIN_MATCH - 1;
            let mut best_dist = 0usize;
            if pos + MIN_MATCH <= data.len() {
                let max_len = (data.len() - pos).min(MAX_MATCH);
                let lo = pos.saturating_sub(window);
                for c in (lo..pos).rev() {
                    let mut len = 0usize;
                    while len < max_len && data[c + len] == data[pos + len] {
                        len += 1;
                    }
                    if len > best_len {
                        best_len = len;
                        best_dist = pos - c;
                        if len == max_len {
                            break;
                        }
                    }
                }
            }
            if best_len >= MIN_MATCH {
                flush(&mut out, literal_start, pos);
                encode_varint(&mut out, ((best_len as u64) << 1) | 1);
                encode_varint(&mut out, best_dist as u64);
                pos += best_len;
                literal_start = pos;
            } else {
                pos += 1;
            }
        }
        flush(&mut out, literal_start, data.len());
        out
    }

    #[test]
    fn decompress_rejects_claim_over_budget() {
        let c = Lzss::default();
        let data = vec![3u8; 64];
        let packed = c.compress(&data);
        assert!(matches!(
            c.decompress(&packed, MAX_DECODE_LEN + 1),
            Err(CompressError::BadToken)
        ));
        // A tiny corrupt stream claiming a huge (but in-budget) length
        // must fail cleanly, not materialize the claim.
        let mut stream = Vec::new();
        encode_varint(&mut stream, ((MAX_DECODE_LEN as u64) << 1) | 1); // match
        encode_varint(&mut stream, 1); // dist into empty output
        assert!(matches!(
            c.decompress(&stream, MAX_DECODE_LEN),
            Err(CompressError::BadBackreference { .. })
        ));
    }

    #[test]
    fn decompress_rejects_match_past_claimed_len() {
        // One literal byte, then a match that runs past `expected_len`:
        // the budget check must fire before the copy loop runs.
        let mut stream = Vec::new();
        encode_varint(&mut stream, 4 << 1); // flag bit clear: literal run of 4
        stream.extend_from_slice(b"abab");
        encode_varint(&mut stream, ((1u64 << 19) << 1) | 1);
        encode_varint(&mut stream, 2);
        let c = Lzss::default();
        assert!(matches!(
            c.decompress(&stream, 64),
            Err(CompressError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn decompress_rejects_truncated_stream() {
        let c = Lzss::default();
        let packed = c.compress(b"hello hello hello hello");
        for cut in 0..packed.len() {
            assert!(c.decompress(&packed[..cut], 24).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn decompress_rejects_bad_backreference() {
        // match len=4, dist=9 with no prior output.
        let mut stream = Vec::new();
        encode_varint(&mut stream, (4 << 1) | 1);
        encode_varint(&mut stream, 9);
        let c = Lzss::default();
        assert!(matches!(
            c.decompress(&stream, 4),
            Err(CompressError::BadBackreference { .. })
        ));
    }

    #[test]
    fn decompress_rejects_wrong_expected_len() {
        let c = Lzss::default();
        let packed = c.compress(b"abcdefgh");
        assert!(matches!(
            c.decompress(&packed, 7),
            Err(CompressError::LengthMismatch { .. })
        ));
        assert!(matches!(
            c.decompress(&packed, 9),
            Err(CompressError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn db_page_like_content_reaches_zlib_class_ratio() {
        // Simulate a slotted DB page: repeated row headers, textual fields,
        // zero padding — the kind of content Figure 4's "compressed"
        // baseline operates on.
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut page = vec![0u8; 8192];
        let mut off = 64;
        while off + 80 < 6000 {
            page[off..off + 4].copy_from_slice(&(off as u32).to_le_bytes());
            page[off + 4..off + 24].copy_from_slice(b"CUSTOMER_NAME_FIELD_");
            for b in &mut page[off + 24..off + 44] {
                *b = b'a' + rng.random_range(0..26u8);
            }
            off += 80;
        }
        let c = Lzss::default();
        let packed = roundtrip(&c, &page);
        assert!(
            packed * 2 < page.len(),
            "expected >=2x on page-like data, got {} / {}",
            packed,
            page.len()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_roundtrip_random(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            roundtrip(&Lzss::default(), &data);
        }

        #[test]
        fn prop_roundtrip_structured(seed in any::<u64>(), n in 1usize..2048) {
            // Low-entropy data: small alphabet with long runs.
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut data = Vec::with_capacity(n);
            while data.len() < n {
                let run = rng.random_range(1..=32usize).min(n - data.len());
                let byte = rng.random_range(0..4u8);
                data.extend(std::iter::repeat_n(byte, run));
            }
            roundtrip(&Lzss::default(), &data);
            roundtrip(&Lzss::fast(), &data);
            roundtrip(&Lzss::new(512, 4), &data);
        }

        /// With chain depth >= window the hash-chain search must visit
        /// every candidate the brute-force scan does (a match of
        /// MIN_MATCH bytes implies an equal hash4, so the candidate is
        /// on the walked chain), and both pick the longest match with
        /// nearest-wins tie-breaking — so the token streams must agree
        /// byte for byte. Inputs run to 8x the window, forcing the
        /// `prev` ring through many wraps: a corrupted chain would show
        /// up as a worse (different) token stream.
        #[test]
        fn prop_deep_chain_matches_brute_force_oracle(seed in any::<u64>(), n in 1usize..2048) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut data = Vec::with_capacity(n);
            while data.len() < n {
                let run = rng.random_range(1..=24usize).min(n - data.len());
                let byte = rng.random_range(0..6u8);
                data.extend(std::iter::repeat_n(byte, run));
            }
            let codec = Lzss::new(256, 512);
            let packed = codec.compress(&data);
            let oracle = oracle_compress(&data, codec.window());
            prop_assert_eq!(&packed, &oracle);
            prop_assert_eq!(codec.decompress(&packed, data.len()).unwrap(), data);
        }

        /// Decode of arbitrary bytes under an arbitrary in-budget claim
        /// never panics and never produces more than the claim.
        #[test]
        fn prop_hostile_stream_decode_is_total(
            data in proptest::collection::vec(any::<u8>(), 0..512),
            claim in 0usize..(MAX_DECODE_LEN + 4),
        ) {
            let c = Lzss::default();
            if let Ok(out) = c.decompress(&data, claim) {
                prop_assert_eq!(out.len(), claim);
            }
        }
    }
}
