//! Lossless compression used by the "traditional replication with data
//! compression" baseline of the PRINS paper.
//!
//! The paper compresses replicated blocks with zlib (`[22]`). zlib is not
//! in this workspace's allowed dependency set, so we implement a
//! comparable general-purpose LZ77 family codec from scratch:
//!
//! * [`Lzss`] — greedy LZ77 with hash-chain match finding, a 32 KB window
//!   and a varint token stream. On database pages it reaches the ~2–4×
//!   ratios zlib gets; on text it does better, matching the paper's
//!   observation that the filesystem micro-benchmark (text files) is more
//!   compressible than database files.
//! * [`Rle`] — byte-level run-length encoding, used as a cheap fast path
//!   and as a baseline in ablation benches.
//!
//! Both implement the [`Codec`] trait so the replication layer can swap
//! them.
//!
//! # Example
//!
//! ```
//! use prins_compress::{Codec, Lzss};
//!
//! # fn main() -> Result<(), prins_compress::CompressError> {
//! let codec = Lzss::default();
//! let data = b"the quick brown fox jumps over the lazy dog. \
//!              the quick brown fox jumps over the lazy dog.".to_vec();
//! let packed = codec.compress(&data);
//! assert!(packed.len() < data.len());
//! assert_eq!(codec.decompress(&packed, data.len())?, data);
//! # Ok(())
//! # }
//! ```

mod error;
mod lzss;
mod rle;

pub use error::CompressError;
pub use lzss::{Lzss, MAX_DECODE_LEN};
pub use rle::Rle;

/// A lossless block codec.
///
/// Implementations must be deterministic and must round-trip every input
/// (`decompress(compress(x)) == x`); there is no requirement that the
/// output be smaller than the input (incompressible data may expand
/// slightly, as with any entropy-less LZ format).
pub trait Codec: Send + Sync {
    /// Compresses `data` into a self-describing byte stream.
    fn compress(&self, data: &[u8]) -> Vec<u8>;

    /// Decompresses `data`, verifying the result is exactly
    /// `expected_len` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError`] when the stream is malformed, truncated,
    /// or decodes to the wrong length.
    fn decompress(&self, data: &[u8], expected_len: usize) -> Result<Vec<u8>, CompressError>;

    /// Short human-readable codec name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_trait_is_object_safe() {
        let codecs: Vec<Box<dyn Codec>> = vec![Box::new(Lzss::default()), Box::new(Rle)];
        for c in &codecs {
            let data = b"abcabcabcabc".to_vec();
            let packed = c.compress(&data);
            assert_eq!(c.decompress(&packed, data.len()).unwrap(), data);
            assert!(!c.name().is_empty());
        }
    }
}
