//! Error type for the compression codecs.

use std::fmt;

/// Errors from [`Codec::decompress`](crate::Codec::decompress).
#[derive(Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompressError {
    /// The stream ended before decoding finished.
    Truncated,
    /// A token referenced data outside the decoded window.
    BadBackreference {
        /// Distance the token asked for.
        distance: usize,
        /// Bytes decoded so far.
        available: usize,
    },
    /// Decoding produced a different length than the caller expected.
    LengthMismatch {
        /// Length produced by decoding.
        produced: usize,
        /// Length the caller expected.
        expected: usize,
    },
    /// A structurally invalid token was encountered.
    BadToken,
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::Truncated => write!(f, "compressed stream truncated"),
            CompressError::BadBackreference {
                distance,
                available,
            } => write!(
                f,
                "backreference distance {distance} exceeds decoded bytes {available}"
            ),
            CompressError::LengthMismatch { produced, expected } => write!(
                f,
                "decompressed length {produced} does not match expected {expected}"
            ),
            CompressError::BadToken => write!(f, "invalid token in compressed stream"),
        }
    }
}

impl std::error::Error for CompressError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_numbers() {
        let e = CompressError::BadBackreference {
            distance: 100,
            available: 10,
        };
        assert!(e.to_string().contains("100"));
        let e = CompressError::LengthMismatch {
            produced: 5,
            expected: 6,
        };
        assert!(e.to_string().contains('6'));
    }
}
