#!/usr/bin/env sh
# CI gate: formatting, lints, build, and the test suites.
#
# Offline note: the build environment has no crates.io access. Every
# external dependency (rand, proptest, criterion, crossbeam,
# parking_lot) is an offline stand-in vendored under vendor/ and wired
# into [workspace.dependencies] as a path dependency, so cargo never
# needs the registry. In an environment *with* registry access nothing
# changes — path dependencies resolve locally either way. If cargo
# still attempts network access (e.g. a stale lockfile referencing
# registry packages), run with CARGO_NET_OFFLINE=true.
set -eu
cd "$(dirname "$0")"

# --all/--workspace keep the gates covering every crate, including the
# prins-obs metrics crate and any future additions.
cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
# The GF(256)/Reed-Solomon core is kernel-adjacent code: hold it to the
# lint gate on its own as well, so a workspace-level allow can never
# mask a warning in it.
cargo clippy -p prins-ec -- -D warnings
# Same standalone treatment for the hot-path buffer pool: every byte the
# write path touches flows through prins-buf.
cargo clippy -p prins-buf -- -D warnings
# And for the observability crate: the tracing fast path (Span drop,
# TraceSink::event) sits on every write, so its lints gate alone too.
cargo clippy -p prins-obs -- -D warnings
# And for the policy engine: its classifier sits on the zero-copy
# write path (region table, probe, decision logic), so it gates alone.
cargo clippy -p prins-policy -- -D warnings
cargo build --release
cargo bench --workspace --no-run     # criterion benches must keep compiling
# Cap test parallelism: the pipeline/cluster suites spawn their own
# worker and replica threads, so unbounded test threads oversubscribe
# CI boxes and turn timing-tolerant tests flaky.
RUST_TEST_THREADS=4 cargo test -q --release              # tier-1 gate (root package)
RUST_TEST_THREADS=4 cargo test -q --release --workspace  # every crate, incl. vendored stubs
# Fault-schedule fuzzing: replay the checked-in regression seeds plus a
# few fresh random ones. A failing seed is printed with its minimized
# schedule (replay it locally with `sim-replay <seed>`) and appended to
# the corpus so it stays covered on every future run.
cargo run -q --release -p prins-sim --bin sim-replay -- \
    corpus tests/sim_seeds.txt --fresh 5 --append-failures
# Observability determinism gate: the obs-dump run is a virtual-time
# simulation, so its event-count summary at a fixed --ops must be
# byte-identical on every machine. A diff here means either the
# pipeline's event instrumentation changed (regenerate the golden with
# the command below) or nondeterminism crept into the engine/sim stack
# (find it before it breaks seed replay).
cargo run -q --release -p prins-bench --bin obs-dump -- --ops 300 --summary \
    | diff tests/obs_golden.json -
# Integrity determinism gate: the corruption scenarios inject wire and
# replica-media bit flips; their event-count summaries must replay
# byte-identically. A diff means the detect/retransmit/scrub behaviour
# changed — regenerate with the same command if that was intentional.
cargo run -q --release -p prins-sim --bin sim-replay -- scenario 'corruption_*' --events \
    | diff tests/corruption_golden.txt -
# Erasure-coding determinism gate: the ec_rebuild_* scenarios kill one
# and two strip-holding nodes mid-workload, rebuild them from k
# survivors, and verify every strip re-encodes the logical image. Their
# event-count summaries must replay byte-identically — regenerate with
# the same command if the EC write/rebuild paths changed intentionally.
cargo run -q --release -p prins-sim --bin sim-replay -- scenario 'ec_rebuild_*' --events \
    | diff tests/ec_golden.txt -
# Scale-out determinism gate: live migration under a 10x-slow link with
# a node kill mid-copy, and offloaded reads racing a replica rejoin.
# Their event-count summaries must replay byte-identically — regenerate
# with the same two commands if placement/migration/read-offload
# behaviour changed intentionally.
{
    cargo run -q --release -p prins-sim --bin sim-replay -- scenario migrate_under_faults --events
    cargo run -q --release -p prins-sim --bin sim-replay -- scenario read_offload_rejoin --events
} | diff tests/scale_out_golden.txt -
# Trace determinism gate: the migrate_under_faults flight-recorder
# summary (per-stage tail attribution, SLO burn, sampling counts) must
# replay byte-identically — trace IDs and sampling are derived from
# deterministic counters, never entropy. A diff means the traced hop
# set changed (regenerate with the same command if intentional) or a
# nondeterministic hop crept into the write path.
cargo run -q --release -p prins-sim --bin sim-replay -- scenario migrate_under_faults --traces \
    | diff tests/trace_golden.json -
# Adaptive-policy determinism gate: the policy engine drives the
# foreground pipeline through a small-delta -> churn phase change with
# inline assertions on phase commits, decision mix, and counterfactual
# regret; its event-count summary must replay byte-identically.
# Regenerate with the same command if the decision or phase logic
# changed intentionally.
cargo run -q --release -p prins-sim --bin sim-replay -- scenario adaptive_phase_shift --events \
    | diff tests/adaptive_golden.txt -
# Scale figure wiring smoke: the selection must parse without paying
# for the measurement (the ≥2.5x read-speedup bound itself is asserted
# by prins-bench's scale test in the workspace suite above).
cargo run -q --release -p prins-bench --bin figures -- scale --no-run
# Adaptive ablation wiring smoke: the `figures adaptive` selection must
# parse (the adaptive <= best-static byte bounds are asserted by
# prins-bench's release-gated test in the workspace suite above).
cargo run -q --release -p prins-bench --bin figures -- adaptive --no-run
