//! PRINS workspace umbrella crate: re-exports for integration tests and examples.
pub use prins_block as block;
pub use prins_compress as compress;
pub use prins_core as core_engine;
pub use prins_ec as ec;
pub use prins_fs as fs;
pub use prins_iscsi as iscsi;
pub use prins_net as net;
pub use prins_pagestore as pagestore;
pub use prins_parity as parity;
pub use prins_queueing as queueing;
pub use prins_raid as raid;
pub use prins_repl as repl;
pub use prins_trap as trap;
pub use prins_workloads as workloads;
