//! Offline stand-in for `criterion`.
//!
//! Implements the macro/builder surface the workspace's benches use
//! and measures plain wall-clock time: each benchmark runs a short
//! calibration pass, then `sample_size` timed samples, and prints the
//! median time per iteration (plus throughput when configured). No
//! statistics, plots or baselines — just numbers on stdout.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export used by benches to defeat constant folding.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier (`function_name/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in ~2 ms per sample?
        let start = Instant::now();
        let mut calibration_iters: u64 = 0;
        while start.elapsed() < Duration::from_millis(2) {
            black_box(routine());
            calibration_iters += 1;
        }
        let per_sample = calibration_iters.max(1);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / per_sample as u32);
        }
    }

    fn median(&self) -> Duration {
        let mut sorted = self.samples.clone();
        sorted.sort();
        sorted
            .get(sorted.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO)
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn report(id: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let median = bencher.median();
    let mut line = format!("{id:<50} time: {:>12}", human(median));
    if let Some(tp) = throughput {
        let per_sec = |n: u64| n as f64 / median.as_secs_f64().max(1e-12);
        match tp {
            Throughput::Bytes(n) => {
                line.push_str(&format!(
                    "   thrpt: {:.1} MiB/s",
                    per_sec(n) / (1 << 20) as f64
                ));
            }
            Throughput::Elements(n) => {
                line.push_str(&format!("   thrpt: {:.1} Melem/s", per_sec(n) / 1e6));
            }
        }
    }
    println!("{line}");
}

/// The benchmark runner/configuration.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&id.id, &bencher, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.criterion.sample_size,
        };
        f(&mut bencher);
        report(
            &format!("{}/{}", self.name, id.id),
            &bencher,
            self.throughput,
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.criterion.sample_size,
        };
        f(&mut bencher, input);
        report(
            &format!("{}/{}", self.name, id.id),
            &bencher,
            self.throughput,
        );
        self
    }

    /// Ends the group (formatting no-op here).
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        c.bench_function("smoke/add", |b| {
            b.iter(|| {
                runs += 1;
                black_box(2u64 + 2)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn groups_report_throughput() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("smoke_group");
        group.throughput(Throughput::Bytes(4096));
        group.bench_with_input(BenchmarkId::from_parameter(4096), &4096usize, |b, &n| {
            b.iter(|| black_box(vec![0u8; n]))
        });
        group.finish();
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("xor", 4096).id, "xor/4096");
        assert_eq!(BenchmarkId::from_parameter("8KB").id, "8KB");
    }
}
