//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses: the
//! [`proptest!`] macro running N random cases per test, [`Strategy`]
//! implementations for numeric ranges, tuples, collections and a small
//! character-class regex subset, [`any`] for primitives, and
//! [`sample::Index`]. Failing cases report their inputs but are **not
//! shrunk** — rerun with the printed seed offset to debug.

use std::fmt;

/// Deterministic SplitMix64 generator driving case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Error carried out of a failing property body by the `prop_assert*`
/// macros.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with `message`.
    pub fn fail<S: Into<String>>(message: S) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl<E: std::error::Error> From<E> for TestCaseError {
    fn from(e: E) -> Self {
        Self::fail(e.to_string())
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values for one property input.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u128) - (self.start as u128);
                assert!(span > 0, "empty range strategy");
                (self.start as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as u128) - (*self.start() as u128) + 1;
                (*self.start() as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as u128) - (self.start as u128) + 1;
                (self.start as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}
impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                (self.start as i128 + ((rng.next_u64() as i128) & i128::MAX) % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                (*self.start() as i128 + ((rng.next_u64() as i128) & i128::MAX) % span) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start() + (rng.unit_f64() as $t) * (self.end() - self.start())
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

/// A character-class regex subset: sequences of literal characters and
/// `[...]` classes, each optionally quantified with `{n}`, `{m,n}`,
/// `?`, `*` or `+` (the latter two capped at 32 repetitions).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        regex_like::generate(self, rng)
    }
}

mod regex_like {
    use super::TestRng;

    enum Atom {
        Class(Vec<char>),
        Literal(char),
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
        let mut set = Vec::new();
        let mut prev: Option<char> = None;
        while let Some(c) = chars.next() {
            match c {
                ']' => return set,
                '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                    let lo = prev.take().expect("range start");
                    let hi = chars.next().expect("range end");
                    for v in (lo as u32)..=(hi as u32) {
                        if let Some(ch) = char::from_u32(v) {
                            set.push(ch);
                        }
                    }
                }
                _ => {
                    if let Some(p) = prev.replace(c) {
                        set.push(p);
                    }
                }
            }
        }
        if let Some(p) = prev {
            set.push(p);
        }
        set
    }

    fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
        match chars.peek() {
            Some('{') => {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().unwrap_or(0),
                        hi.trim().parse().unwrap_or(0),
                    ),
                    None => {
                        let n = spec.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 32)
            }
            Some('+') => {
                chars.next();
                (1, 32)
            }
            _ => (1, 1),
        }
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => Atom::Class(parse_class(&mut chars)),
                '\\' => Atom::Literal(chars.next().unwrap_or('\\')),
                other => Atom::Literal(other),
            };
            let (lo, hi) = parse_quantifier(&mut chars);
            let count = lo + (rng.below((hi - lo + 1) as u64) as usize);
            for _ in 0..count {
                match &atom {
                    Atom::Class(set) if !set.is_empty() => {
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                    Atom::Class(_) => {}
                    Atom::Literal(ch) => out.push(*ch),
                }
            }
        }
        out
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! impl_arbitrary_tuple {
    ($(($($t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($t::arbitrary(rng),)+)
            }
        }
    )+};
}
impl_arbitrary_tuple!((A, B), (A, B, C), (A, B, C, D));

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T> fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Any")
    }
}

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`proptest::collection::vec` and friends).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Inclusive size bounds for a generated collection.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of an element strategy.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy generating `HashSet`s of an element strategy.
    #[derive(Debug)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `HashSet` strategy; may undershoot the requested size when the
    /// element space is small (duplicates are merged, as in proptest).
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = HashSet::with_capacity(target);
            // Bounded attempts so tiny domains cannot loop forever.
            for _ in 0..target.saturating_mul(16).max(16) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection of yet-unknown length.
    #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
    pub struct Index(u64);

    impl Index {
        /// Resolves against a concrete collection length.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// The `prop` namespace (`prop::sample::Index`, `prop::collection`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything a property-based test module imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

#[doc(hidden)]
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a over the test path: deterministic but distinct per test.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($(#[$argmeta:meta])* $arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut rng = $crate::TestRng::from_seed(seed);
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let mut inputs = String::new();
                $(inputs.push_str(&format!(concat!("  ", stringify!($arg), " = {:?}\n"), &$arg));)+
                let result: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body Ok(()) })();
                if let Err(e) = result {
                    panic!(
                        "proptest {} failed at case {}/{} (seed {:#x}):\n{}\ninputs:\n{}",
                        stringify!($name), case + 1, config.cases, seed, e, inputs,
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "prop_assert_eq failed: {} != {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "prop_assert_ne failed: {} == {}\n value: {:?}",
            stringify!($left),
            stringify!($right),
            left,
        );
    }};
}

/// Discards a case when an assumption does not hold. This stand-in
/// treats the case as vacuously passing rather than resampling.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 1u8.., f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y >= 1);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            v in crate::collection::vec(any::<u8>(), 0..10),
            pair in (0u8..3, crate::collection::vec(any::<u8>(), 1..4)),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(v.len() < 10);
            prop_assert!(pair.0 < 3);
            prop_assert!(!pair.1.is_empty());
            prop_assert!(idx.index(5) < 5);
        }

        #[test]
        fn string_class_pattern_generates_within_spec(s in "[a-zA-Z0-9 ]{0,40}") {
            prop_assert!(s.len() <= 40);
            prop_assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == ' '));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_override_applies(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn hash_set_strategy_respects_bounds() {
        let mut rng = TestRng::from_seed(5);
        let s = crate::collection::hash_set(0u64..10_000, 2..50);
        for _ in 0..50 {
            let set = s.generate(&mut rng);
            assert!(set.len() >= 2 && set.len() < 50, "len {}", set.len());
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
