//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: a deterministic
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] trait with `random`, `random_range`, `random_bool` and
//! `fill_bytes`. The generator is SplitMix64 — statistically fine for
//! test data and benchmarks, not cryptographic.

/// Types that can be sampled uniformly from an RNG ("standard"
/// distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

/// Primitives that support uniform sampling from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let lo_w = lo as u128;
                let hi_w = hi as u128;
                let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                assert!(span > 0, "cannot sample from empty range");
                (lo_w + (rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                assert!(span > 0, "cannot sample from empty range");
                (lo_w + ((rng.next_u64() as i128) & i128::MAX) % span) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo < hi, "cannot sample from empty range");
                let u: $t = Standard::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range shapes accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(rng, lo, hi, true)
    }
}

/// The random-number-generator trait: a `u64` source plus convenience
/// samplers.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Draws one value of an inferred type.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from `range`.
    fn random_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

/// Extension alias: the real crate splits core sampling from
/// conveniences; here they are one trait under two importable names.
pub use Rng as RngExt;

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for the real
    /// `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Avoid the all-zero fixed point region by pre-mixing.
            let mut rng = StdRng {
                state: state.wrapping_add(0x9e37_79b9_7f4a_7c15),
            };
            let _ = rng.next_u64();
            rng
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let v: u64 = rng.random_range(10..=20);
            assert!((10..=20).contains(&v));
            let f: f64 = rng.random_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
            let i: i64 = rng.random_range(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn bytes_look_uniform_enough() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = vec![0u8; 1 << 16];
        rng.fill_bytes(&mut buf);
        let mut counts = [0u32; 256];
        for &b in &buf {
            counts[b as usize] += 1;
        }
        // Each value expects 256 hits; allow a generous band.
        assert!(counts.iter().all(|&c| c > 128 && c < 512));
    }
}
