//! Offline stand-in for `parking_lot`.
//!
//! Wraps the standard-library locks behind `parking_lot`'s
//! non-poisoning API (`lock()` / `read()` / `write()` return guards
//! directly). Poisoned locks are recovered rather than propagated —
//! matching `parking_lot`, which has no poisoning at all.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves
    /// uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock without poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(vec![1, 2, 3]);
        let a = l.read();
        let b = l.read();
        assert_eq!(a.len() + b.len(), 6);
        drop((a, b));
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn default_and_debug_work() {
        let m: Mutex<u8> = Mutex::default();
        assert!(format!("{m:?}").contains("Mutex"));
        let l: RwLock<u8> = RwLock::default();
        assert!(format!("{l:?}").contains("RwLock"));
    }
}
