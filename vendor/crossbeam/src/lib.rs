//! Offline stand-in for `crossbeam`.
//!
//! Provides the `channel` module subset the workspace uses: an
//! unbounded MPMC channel whose `Sender` and `Receiver` are both
//! `Send + Sync + Clone`, with blocking, timed and non-blocking
//! receives and disconnect detection on both sides.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error from [`Sender::send`]: the message could not be delivered
    /// because all receivers are gone. Carries the message back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error from [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message queued right now.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Error from [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Error from [`Receiver::recv`]: all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(msg));
            }
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(msg);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they can
                // observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Sender").finish_non_exhaustive()
        }
    }

    impl<T> Receiver<T> {
        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            match queue.pop_front() {
                Some(msg) => Ok(msg),
                None if self.shared.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking receive; fails only when all senders are gone and
        /// the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Receive waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _result) = self
                    .shared
                    .ready
                    .wait_timeout(queue, remaining)
                    .unwrap_or_else(|e| e.into_inner());
                queue = guard;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Receiver")
                .field("len", &self.len())
                .finish_non_exhaustive()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fifo_order_and_len() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            assert_eq!(rx.len(), 10);
            for i in 0..10 {
                assert_eq!(rx.recv().unwrap(), i);
            }
            assert!(rx.is_empty());
        }

        #[test]
        fn disconnect_is_observed_on_both_sides() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));

            let (tx, rx) = unbounded::<u8>();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9)); // drains queued messages first
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn timeout_fires_then_message_arrives() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            let h = thread::spawn(move || tx.send(7).unwrap());
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(7));
            h.join().unwrap();
        }

        #[test]
        fn cross_thread_blocking_recv_wakes() {
            let (tx, rx) = unbounded::<u32>();
            let h = thread::spawn(move || rx.recv().unwrap());
            thread::sleep(Duration::from_millis(10));
            tx.send(42).unwrap();
            assert_eq!(h.join().unwrap(), 42);
        }

        #[test]
        fn try_recv_reports_empty() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(1).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
        }
    }
}
